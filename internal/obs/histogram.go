package obs

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets. Observe is the
// zero-allocation hot path: one bucket search (the bound count is
// small and fixed), two atomic adds, and one CAS loop for the sum. A
// nil receiver no-ops.
type Histogram struct {
	// upper holds the ascending bucket upper bounds; counts has one
	// slot per bound plus the +Inf overflow slot at the end. Counts are
	// per-bucket (not cumulative); exposition accumulates.
	upper   []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(sortedUpper []float64) *Histogram {
	return &Histogram{
		upper:  sortedUpper,
		counts: make([]atomic.Uint64, len(sortedUpper)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// cumulative returns the per-bound cumulative counts (excluding +Inf,
// whose cumulative count is Count). A point-in-time scrape racing
// Observe may see a bucket increment before the total — exposition
// therefore derives the +Inf series from the bucket sum, keeping the
// rendered histogram internally monotonic.
func (h *Histogram) cumulative() (bounds []float64, counts []uint64, total uint64) {
	counts = make([]uint64, len(h.upper))
	var cum uint64
	for i := range h.upper {
		cum += h.counts[i].Load()
		counts[i] = cum
	}
	total = cum + h.counts[len(h.upper)].Load()
	return h.upper, counts, total
}
