// Package obs is the platform's dependency-free observability core: a
// metrics registry of atomic counters, gauges, and fixed-bucket
// histograms — plain and labeled — with Prometheus text-format
// exposition. Every instrument the platform registers follows the
// imc2_<subsystem>_<name>_<unit> naming convention (enforced by the
// metrics-lint test in internal/wire), where <subsystem> is one of
// wire, sched, store, registry, or truth, and <unit> is total,
// seconds, bytes, count, ratio, or info.
//
// # Nil safety
//
// The whole API is nil-safe end to end: constructors on a nil
// *Registry return nil instruments, Vec lookups on nil Vecs return nil
// children, and every method on a nil instrument is a no-op. A library
// therefore threads a possibly-nil registry through unconditionally —
//
//	m := struct{ submits *obs.Counter }{submits: reg.Counter(...)}
//	...
//	m.submits.Inc() // no-op when reg was nil; one atomic add otherwise
//
// — and pays a single predictable nil check when observability is off.
// Instrumented hot paths stay allocation-free: Observe, Inc, Add, and
// Set never allocate. Only Vec.With allocates (on first use of a label
// combination), so hot paths resolve their children once at wiring
// time and hold them.
//
// # Exposition
//
// WritePrometheus renders the registry in Prometheus text format
// (version 0.0.4): one # HELP / # TYPE header per family, series in
// registration-then-first-use order, histograms expanded into
// cumulative _bucket series plus _sum and _count. Handler serves the
// same bytes over HTTP — platformd mounts it on the -metrics-addr
// listener as GET /metrics.
//
// # Relation to the paper
//
// The per-iteration settle telemetry this package carries (see
// truth.Trace) is the operational face of the paper's
// iterate-to-convergence truth discovery: the same convergence
// counters an operator watches are the warm-start signal a future
// online/incremental settle engine consumes.
package obs
