package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// format (version 0.0.4): a # HELP and # TYPE header per family, then
// its series in first-use order. Histograms expand into cumulative
// _bucket series (up to and including le="+Inf") plus _sum and _count.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		f.write(bw)
	}
	return bw.Flush()
}

// Handler serves the registry in Prometheus text format — mount it as
// GET /metrics. A nil registry serves empty exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ)
	w.WriteByte('\n')

	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()

	for i, k := range keys {
		var values []string
		if len(f.labels) > 0 {
			values = strings.Split(k, "\x00")
		}
		switch m := series[i].(type) {
		case *Counter:
			writeSeries(w, f.name, f.labels, values, "", "", formatUint(m.Value()))
		case *Gauge:
			writeSeries(w, f.name, f.labels, values, "", "", formatFloat(m.Value()))
		case *Histogram:
			bounds, counts, total := m.cumulative()
			for bi, b := range bounds {
				writeSeries(w, f.name+"_bucket", f.labels, values, "le", formatFloat(b), formatUint(counts[bi]))
			}
			writeSeries(w, f.name+"_bucket", f.labels, values, "le", "+Inf", formatUint(total))
			writeSeries(w, f.name+"_sum", f.labels, values, "", "", formatFloat(m.Sum()))
			writeSeries(w, f.name+"_count", f.labels, values, "", "", formatUint(total))
		}
	}
}

// writeSeries emits one sample line, appending the extra label (the
// histogram's le) when set.
func writeSeries(w *bufio.Writer, name string, labels, values []string, extraLabel, extraValue, sample string) {
	w.WriteString(name)
	if len(labels) > 0 || extraLabel != "" {
		w.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extraLabel != "" {
			if !first {
				w.WriteByte(',')
			}
			w.WriteString(extraLabel)
			w.WriteString(`="`)
			w.WriteString(extraValue)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(sample)
	w.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes a help string per the text format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
