package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metric types as they appear in the exposition's # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families in registration order. The zero value
// is not usable; construct with NewRegistry. A nil *Registry is a valid
// "observability off" registry: every constructor returns a nil
// instrument whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric: shared help/type/labels plus its series.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	order  []string // series keys in first-use order
	series map[string]any
}

// register resolves name to its family, creating it on first use. A
// re-registration with the identical signature returns the existing
// family (so independent components may share a registry without
// coordinating); a conflicting one panics — that is a wiring bug, not
// a runtime condition.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if err := checkName(name); err != nil {
		panic("obs: " + err.Error())
	}
	for _, l := range labels {
		if err := checkName(l); err != nil {
			panic("obs: label of " + name + ": " + err.Error())
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.byName[name]; f != nil {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a conflicting signature", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  labels,
		buckets: buckets,
		series:  make(map[string]any),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// get resolves one series of the family by its label values, creating
// it with mk on first use.
func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Names lists every registered metric name in registration order. The
// metrics-lint test walks it to enforce the naming convention.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.families))
	for i, f := range r.families {
		names[i] = f.name
	}
	return names
}

// snapshot copies the family list for exposition without holding the
// registry lock across rendering.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.families...)
}

// checkName validates a metric or label name against the Prometheus
// data model.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExpBuckets returns n histogram bucket bounds growing geometrically
// from start by factor — the standard shape for latency and size
// distributions spanning orders of magnitude. It panics on a
// non-positive start, a factor <= 1, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LatencyBuckets is the default bound set for operation-duration
// histograms in seconds: 100µs to ~52s, doubling.
var LatencyBuckets = ExpBuckets(100e-6, 2, 20)

// sortedCopy returns values ascending-sorted without mutating the
// caller's slice; histogram construction uses it so bucket order never
// depends on the caller.
func sortedCopy(values []float64) []float64 {
	out := append([]float64(nil), values...)
	sort.Float64s(out)
	return out
}
