// Package iox persists campaigns, datasets, and discovery results as
// JSON, so workloads can be generated once and replayed across runs,
// shipped to other machines, or inspected by external tooling.
package iox

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"imc2/internal/gen"
	"imc2/internal/model"
)

// datasetFile is the serialized form of a dataset: the task definitions
// plus the flat observation list. Rebuilding through model.Builder re-runs
// all validation on load.
type datasetFile struct {
	Version      int                 `json:"version"`
	Tasks        []model.Task        `json:"tasks"`
	Observations []model.Observation `json:"observations"`
}

// currentVersion guards against silently loading a future format.
const currentVersion = 1

// WriteDataset serializes a dataset to w.
func WriteDataset(w io.Writer, ds *model.Dataset) error {
	if ds == nil {
		return fmt.Errorf("iox: nil dataset")
	}
	f := datasetFile{
		Version: currentVersion,
		Tasks:   ds.Tasks(),
	}
	for i := 0; i < ds.NumWorkers(); i++ {
		for _, j := range ds.WorkerTasks(i) {
			f.Observations = append(f.Observations, model.Observation{
				Worker: ds.WorkerID(i),
				Task:   ds.Task(j).ID,
				Value:  ds.ValueString(j, ds.ValueOf(i, j)),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadDataset deserializes and re-validates a dataset from r.
func ReadDataset(r io.Reader) (*model.Dataset, error) {
	var f datasetFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("iox: decoding dataset: %w", err)
	}
	if f.Version != currentVersion {
		return nil, fmt.Errorf("iox: unsupported dataset version %d (want %d)", f.Version, currentVersion)
	}
	b := model.NewBuilder()
	for _, t := range f.Tasks {
		b.AddTask(t)
	}
	for _, o := range f.Observations {
		b.AddObservation(o.Worker, o.Task, o.Value)
	}
	ds, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("iox: rebuilding dataset: %w", err)
	}
	return ds, nil
}

// campaignFile serializes a generated campaign, keeping the hidden ground
// truth and the generator metadata alongside the sealed dataset.
type campaignFile struct {
	Version      int                 `json:"version"`
	Spec         gen.CampaignSpec    `json:"spec"`
	Tasks        []model.Task        `json:"tasks"`
	Observations []model.Observation `json:"observations"`
	GroundTruth  map[string]string   `json:"ground_truth"`
	Costs        map[string]float64  `json:"costs"`
	TrueAccuracy map[string]float64  `json:"true_accuracy"`
	Copiers      []string            `json:"copiers"`
	Sources      map[string][]string `json:"sources"`
}

// WriteCampaign serializes a campaign to w.
func WriteCampaign(w io.Writer, c *gen.Campaign) error {
	if c == nil || c.Dataset == nil {
		return fmt.Errorf("iox: nil campaign")
	}
	ds := c.Dataset
	f := campaignFile{
		Version:      currentVersion,
		Spec:         c.Spec,
		Tasks:        ds.Tasks(),
		GroundTruth:  c.GroundTruth,
		Costs:        make(map[string]float64, ds.NumWorkers()),
		TrueAccuracy: make(map[string]float64, ds.NumWorkers()),
		Sources:      make(map[string][]string),
	}
	for i := 0; i < ds.NumWorkers(); i++ {
		id := ds.WorkerID(i)
		f.Costs[id] = c.Costs[i]
		f.TrueAccuracy[id] = c.TrueAccuracy[i]
		for _, j := range ds.WorkerTasks(i) {
			f.Observations = append(f.Observations, model.Observation{
				Worker: id,
				Task:   ds.Task(j).ID,
				Value:  ds.ValueString(j, ds.ValueOf(i, j)),
			})
		}
	}
	for i := range c.CopierIndex {
		f.Copiers = append(f.Copiers, ds.WorkerID(i))
	}
	sort.Strings(f.Copiers)
	for copier, srcs := range c.Sources {
		var ids []string
		for _, s := range srcs {
			ids = append(ids, ds.WorkerID(s))
		}
		sort.Strings(ids)
		f.Sources[ds.WorkerID(copier)] = ids
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadCampaign deserializes a campaign from r, re-validating the dataset
// and re-linking the metadata to the rebuilt worker indices.
func ReadCampaign(r io.Reader) (*gen.Campaign, error) {
	var f campaignFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("iox: decoding campaign: %w", err)
	}
	if f.Version != currentVersion {
		return nil, fmt.Errorf("iox: unsupported campaign version %d (want %d)", f.Version, currentVersion)
	}
	b := model.NewBuilder()
	for _, t := range f.Tasks {
		b.AddTask(t)
	}
	for _, o := range f.Observations {
		b.AddObservation(o.Worker, o.Task, o.Value)
	}
	ds, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("iox: rebuilding campaign dataset: %w", err)
	}

	c := &gen.Campaign{
		Dataset:      ds,
		GroundTruth:  f.GroundTruth,
		Costs:        make([]float64, ds.NumWorkers()),
		TrueAccuracy: make([]float64, ds.NumWorkers()),
		CopierIndex:  make(map[int]bool, len(f.Copiers)),
		Sources:      make(map[int][]int, len(f.Sources)),
		Spec:         f.Spec,
	}
	for i := 0; i < ds.NumWorkers(); i++ {
		id := ds.WorkerID(i)
		cost, ok := f.Costs[id]
		if !ok {
			return nil, fmt.Errorf("iox: campaign missing cost for worker %q", id)
		}
		c.Costs[i] = cost
		c.TrueAccuracy[i] = f.TrueAccuracy[id]
	}
	for _, id := range f.Copiers {
		i, ok := ds.WorkerIndex(id)
		if !ok {
			return nil, fmt.Errorf("iox: campaign lists unknown copier %q", id)
		}
		c.CopierIndex[i] = true
	}
	for copier, srcs := range f.Sources {
		ci, ok := ds.WorkerIndex(copier)
		if !ok {
			return nil, fmt.Errorf("iox: campaign lists unknown source owner %q", copier)
		}
		for _, sid := range srcs {
			si, ok := ds.WorkerIndex(sid)
			if !ok {
				return nil, fmt.Errorf("iox: campaign lists unknown source %q", sid)
			}
			c.Sources[ci] = append(c.Sources[ci], si)
		}
	}
	return c, nil
}

// SaveCampaign writes a campaign to path (0644).
func SaveCampaign(path string, c *gen.Campaign) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("iox: %w", err)
	}
	defer fh.Close()
	if err := WriteCampaign(fh, c); err != nil {
		return err
	}
	return fh.Close()
}

// LoadCampaign reads a campaign from path.
func LoadCampaign(path string) (*gen.Campaign, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("iox: %w", err)
	}
	defer fh.Close()
	return ReadCampaign(fh)
}
