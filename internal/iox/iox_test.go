package iox

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"imc2/internal/gen"
	"imc2/internal/model"
	"imc2/internal/randx"
)

func testCampaign(t *testing.T) *gen.Campaign {
	t.Helper()
	spec := gen.DefaultSpec()
	spec.Workers = 15
	spec.Tasks = 12
	spec.Copiers = 4
	spec.TasksPerWorker = 6
	c, err := gen.NewCampaign(spec, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDatasetRoundTrip(t *testing.T) {
	orig := testCampaign(t).Dataset
	var buf bytes.Buffer
	if err := WriteDataset(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != orig.NumTasks() || got.NumWorkers() != orig.NumWorkers() ||
		got.NumObservations() != orig.NumObservations() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			got.NumTasks(), got.NumWorkers(), got.NumObservations(),
			orig.NumTasks(), orig.NumWorkers(), orig.NumObservations())
	}
	for i := 0; i < orig.NumWorkers(); i++ {
		id := orig.WorkerID(i)
		gi, ok := got.WorkerIndex(id)
		if !ok {
			t.Fatalf("worker %q lost", id)
		}
		for _, j := range orig.WorkerTasks(i) {
			taskID := orig.Task(j).ID
			gj, ok := got.TaskIndex(taskID)
			if !ok {
				t.Fatalf("task %q lost", taskID)
			}
			want := orig.ValueString(j, orig.ValueOf(i, j))
			if gotV := got.ValueString(gj, got.ValueOf(gi, gj)); gotV != want {
				t.Fatalf("value for (%s, %s) = %q, want %q", id, taskID, gotV, want)
			}
		}
	}
}

func TestDatasetWriteNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataset(&buf, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestDatasetReadErrors(t *testing.T) {
	if _, err := ReadDataset(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadDataset(strings.NewReader(`{"version": 99}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
	// Valid JSON but invalid dataset (observation for unknown task).
	bad := `{"version":1,"tasks":[{"id":"t","num_false":1,"requirement":1,"value":1}],
	         "observations":[{"worker":"w","task":"zz","value":"v"}]}`
	if _, err := ReadDataset(strings.NewReader(bad)); err == nil {
		t.Error("invalid observation accepted")
	}
}

func TestCampaignRoundTrip(t *testing.T) {
	orig := testCampaign(t)
	var buf bytes.Buffer
	if err := WriteCampaign(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset.NumObservations() != orig.Dataset.NumObservations() {
		t.Fatal("observations changed")
	}
	if len(got.GroundTruth) != len(orig.GroundTruth) {
		t.Fatal("ground truth changed")
	}
	for task, v := range orig.GroundTruth {
		if got.GroundTruth[task] != v {
			t.Fatalf("ground truth for %s changed", task)
		}
	}
	// Costs and metadata follow the worker identity across the round trip
	// even if indices shift.
	for i := 0; i < orig.Dataset.NumWorkers(); i++ {
		id := orig.Dataset.WorkerID(i)
		gi, ok := got.Dataset.WorkerIndex(id)
		if !ok {
			t.Fatalf("worker %q lost", id)
		}
		if got.Costs[gi] != orig.Costs[i] {
			t.Fatalf("cost for %q changed: %v vs %v", id, got.Costs[gi], orig.Costs[i])
		}
		if got.TrueAccuracy[gi] != orig.TrueAccuracy[i] {
			t.Fatalf("accuracy for %q changed", id)
		}
		if got.CopierIndex[gi] != orig.CopierIndex[i] {
			t.Fatalf("copier flag for %q changed", id)
		}
	}
	if len(got.Sources) != len(orig.Sources) {
		t.Fatalf("sources changed: %d vs %d", len(got.Sources), len(orig.Sources))
	}
	if got.Spec.Workers != orig.Spec.Workers {
		t.Fatal("spec lost")
	}
}

func TestCampaignFileRoundTrip(t *testing.T) {
	orig := testCampaign(t)
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := SaveCampaign(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCampaign(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset.NumWorkers() != orig.Dataset.NumWorkers() {
		t.Fatal("file round trip changed workers")
	}
}

func TestCampaignReadErrors(t *testing.T) {
	if _, err := ReadCampaign(strings.NewReader("nope")); err == nil {
		t.Error("malformed campaign accepted")
	}
	if _, err := ReadCampaign(strings.NewReader(`{"version": 5}`)); err == nil {
		t.Error("future campaign version accepted")
	}
	if _, err := LoadCampaign(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	// Campaign with a cost entry missing for a worker.
	bad := `{"version":1,
		"spec":{},
		"tasks":[{"id":"t","num_false":1,"requirement":1,"value":1}],
		"observations":[{"worker":"w","task":"t","value":"v"}],
		"ground_truth":{"t":"v"},
		"costs":{},
		"true_accuracy":{},
		"copiers":[],
		"sources":{}}`
	if _, err := ReadCampaign(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "missing cost") {
		t.Errorf("missing cost accepted: %v", err)
	}
	// Unknown copier reference.
	bad2 := strings.Replace(bad, `"costs":{}`, `"costs":{"w":1}`, 1)
	bad2 = strings.Replace(bad2, `"copiers":[]`, `"copiers":["ghost"]`, 1)
	if _, err := ReadCampaign(strings.NewReader(bad2)); err == nil ||
		!strings.Contains(err.Error(), "unknown copier") {
		t.Errorf("unknown copier accepted: %v", err)
	}
}

func TestWriteCampaignNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCampaign(&buf, nil); err == nil {
		t.Error("nil campaign accepted")
	}
	if err := WriteCampaign(&buf, &gen.Campaign{}); err == nil {
		t.Error("campaign without dataset accepted")
	}
}

func TestReadDatasetPreservesSemantics(t *testing.T) {
	// A hand-built dataset keeps its task attributes through the trip.
	ds, err := model.NewBuilder().
		AddTask(model.Task{ID: "q1", NumFalse: 3, Requirement: 2.5, Value: 7.25}).
		AddObservation("alice", "q1", "yes").
		AddObservation("bob", "q1", "no").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	task := got.Task(0)
	if task.NumFalse != 3 || task.Requirement != 2.5 || task.Value != 7.25 {
		t.Fatalf("task attributes changed: %+v", task)
	}
}
