// Package strategy simulates strategic bidding behaviour against the IMC2
// reverse auction. The paper proves truthfulness (Theorem 3); this package
// demonstrates it behaviourally: populations of workers following
// non-truthful bidding strategies never out-earn the truthful population,
// across many campaigns.
package strategy

import (
	"fmt"
	"math"

	"imc2/internal/auction"
	"imc2/internal/randx"
)

// Strategy maps a worker's true cost to the price it submits.
type Strategy interface {
	// Bid returns the submitted price for a worker with the given true
	// cost. Implementations may randomize via rng.
	Bid(trueCost float64, rng *randx.RNG) float64
	// Name labels the strategy in reports.
	Name() string
}

// Truthful bids the true cost — the weakly dominant strategy.
type Truthful struct{}

// Bid returns trueCost.
func (Truthful) Bid(trueCost float64, _ *randx.RNG) float64 { return trueCost }

// Name returns "truthful".
func (Truthful) Name() string { return "truthful" }

// Markup bids trueCost · (1 + Rate): overbidding to extract higher
// payments, at the risk of losing the auction.
type Markup struct {
	// Rate is the relative markup, e.g. 0.5 bids 150% of cost.
	Rate float64
}

// Bid returns the marked-up price.
func (m Markup) Bid(trueCost float64, _ *randx.RNG) float64 {
	return trueCost * (1 + m.Rate)
}

// Name includes the rate.
func (m Markup) Name() string { return fmt.Sprintf("markup+%.0f%%", m.Rate*100) }

// Shade bids trueCost · (1 − Rate): underbidding to win more often, at
// the risk of being paid below cost.
type Shade struct {
	// Rate is the relative discount, e.g. 0.3 bids 70% of cost.
	Rate float64
}

// Bid returns the shaded price (floored at 0).
func (s Shade) Bid(trueCost float64, _ *randx.RNG) float64 {
	b := trueCost * (1 - s.Rate)
	if b < 0 {
		return 0
	}
	return b
}

// Name includes the rate.
func (s Shade) Name() string { return fmt.Sprintf("shade-%.0f%%", s.Rate*100) }

// Jitter bids trueCost scaled by a uniform factor in [1−Spread, 1+Spread]:
// a confused worker with no consistent strategy.
type Jitter struct {
	// Spread bounds the relative deviation.
	Spread float64
}

// Bid returns the jittered price.
func (j Jitter) Bid(trueCost float64, rng *randx.RNG) float64 {
	return trueCost * rng.Uniform(1-j.Spread, 1+j.Spread)
}

// Name includes the spread.
func (j Jitter) Name() string { return fmt.Sprintf("jitter±%.0f%%", j.Spread*100) }

// Report aggregates one strategy's outcomes across simulated campaigns.
type Report struct {
	Strategy string
	// MeanUtility is the per-worker-per-campaign mean of p − c (0 when
	// losing, negative when paid below cost).
	MeanUtility float64
	// WinRate is the fraction of (worker, campaign) pairs that won.
	WinRate float64
	// NegativeRuns counts outcomes with strictly negative utility —
	// impossible for truthful bidders (individual rationality).
	NegativeRuns int
	// Samples is the number of (worker, campaign) outcomes aggregated.
	Samples int
}

// Simulate runs the reverse auction over the given instances, assigning
// the strategy to each worker in turn (one deviator at a time, everyone
// else truthful — the setting of the truthfulness definition), and
// aggregates the deviator's outcomes. trueCosts[k] must align with
// instances[k].Bids, which are taken as the true costs.
func Simulate(instances []*auction.Instance, strat Strategy, rng *randx.RNG) (*Report, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("strategy: no instances")
	}
	rep := &Report{Strategy: strat.Name()}
	var utilSum float64
	for k, in := range instances {
		stratRNG := rng.SplitIndex(k)
		for worker := 0; worker < in.NumWorkers(); worker++ {
			trueCost := in.Bids[worker]
			dev := &auction.Instance{
				Bids:         append([]float64(nil), in.Bids...),
				TaskSets:     in.TaskSets,
				Accuracy:     in.Accuracy,
				Requirements: in.Requirements,
			}
			dev.Bids[worker] = strat.Bid(trueCost, stratRNG)
			out, err := auction.ReverseAuction(dev)
			if err != nil {
				// A deviation can render some winner irreplaceable; the
				// mechanism refuses such instances, and the deviator
				// gains nothing (skip the sample).
				continue
			}
			u := out.Utility(worker, trueCost)
			utilSum += u
			rep.Samples++
			if out.IsWinner(worker) {
				rep.WinRate++
			}
			if u < -1e-9 {
				rep.NegativeRuns++
			}
		}
	}
	if rep.Samples == 0 {
		return nil, fmt.Errorf("strategy: no usable samples for %s", strat.Name())
	}
	rep.MeanUtility = utilSum / float64(rep.Samples)
	rep.WinRate /= float64(rep.Samples)
	return rep, nil
}

// Dominates reports whether a's mean utility weakly dominates b's within
// tolerance — the empirical statement of weak dominance.
func Dominates(a, b *Report, tol float64) bool {
	return a.MeanUtility >= b.MeanUtility-math.Abs(tol)
}
