package strategy

import (
	"testing"

	"imc2/internal/auction"
	"imc2/internal/gen"
	"imc2/internal/platform"
	"imc2/internal/randx"
	"imc2/internal/truth"
)

// testInstances builds a handful of feasible SOAC instances from
// generated campaigns.
func testInstances(t *testing.T, count int) []*auction.Instance {
	t.Helper()
	spec := gen.DefaultSpec()
	spec.Workers = 20
	spec.Tasks = 15
	spec.Copiers = 5
	spec.TasksPerWorker = 9
	spec.RequirementLow, spec.RequirementHigh = 0.5, 1
	spec.MinProvidersPerTask = 4

	opt := truth.DefaultOptions()
	opt.CopyProb = 0.8
	opt.PriorDependence = 0.05

	var out []*auction.Instance
	for seed := int64(0); len(out) < count && seed < int64(count*4); seed++ {
		c, err := gen.NewCampaign(spec, randx.New(seed))
		if err != nil {
			continue
		}
		res, err := truth.Discover(c.Dataset, truth.MethodDATE, opt)
		if err != nil {
			t.Fatal(err)
		}
		in := platform.BuildInstance(c.Dataset, res.Accuracy, c.Costs)
		if _, err := auction.ReverseAuction(in); err != nil {
			continue
		}
		out = append(out, in)
	}
	if len(out) < count {
		t.Fatalf("only %d/%d usable instances", len(out), count)
	}
	return out
}

func TestStrategyNamesAndBids(t *testing.T) {
	rng := randx.New(1)
	tests := []struct {
		s        Strategy
		wantName string
	}{
		{Truthful{}, "truthful"},
		{Markup{Rate: 0.5}, "markup+50%"},
		{Shade{Rate: 0.3}, "shade-30%"},
		{Jitter{Spread: 0.2}, "jitter±20%"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.wantName {
			t.Errorf("Name() = %q, want %q", got, tt.wantName)
		}
		b := tt.s.Bid(4, rng)
		if b < 0 {
			t.Errorf("%s bid %v negative", tt.wantName, b)
		}
	}
	if got := (Truthful{}).Bid(3.5, rng); got != 3.5 {
		t.Errorf("truthful bid = %v", got)
	}
	if got := (Markup{Rate: 0.5}).Bid(4, rng); got != 6 {
		t.Errorf("markup bid = %v, want 6", got)
	}
	if got := (Shade{Rate: 0.25}).Bid(4, rng); got != 3 {
		t.Errorf("shade bid = %v, want 3", got)
	}
	if got := (Shade{Rate: 2}).Bid(4, rng); got != 0 {
		t.Errorf("shade floor = %v, want 0", got)
	}
}

func TestTruthfulDominates(t *testing.T) {
	instances := testInstances(t, 3)
	rng := randx.New(7)

	truthful, err := Simulate(instances, Truthful{}, rng.Split("truthful"))
	if err != nil {
		t.Fatal(err)
	}
	if truthful.NegativeRuns != 0 {
		t.Fatalf("truthful bidders had %d negative-utility outcomes (IR violation)",
			truthful.NegativeRuns)
	}

	rivals := []Strategy{
		Markup{Rate: 0.25},
		Markup{Rate: 0.75},
		Shade{Rate: 0.25},
		Shade{Rate: 0.5},
		Jitter{Spread: 0.4},
	}
	for _, rival := range rivals {
		rep, err := Simulate(instances, rival, rng.Split(rival.Name()))
		if err != nil {
			t.Fatalf("%s: %v", rival.Name(), err)
		}
		if !Dominates(truthful, rep, 1e-6) {
			t.Errorf("%s mean utility %v beats truthful %v — dominance violated",
				rival.Name(), rep.MeanUtility, truthful.MeanUtility)
		}
		t.Logf("%-12s mean utility %.4f  win rate %.2f  negative runs %d",
			rep.Strategy, rep.MeanUtility, rep.WinRate, rep.NegativeRuns)
	}
}

func TestShadingWinsMoreButEarnsLess(t *testing.T) {
	instances := testInstances(t, 3)
	rng := randx.New(11)

	truthful, err := Simulate(instances, Truthful{}, rng.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	shade, err := Simulate(instances, Shade{Rate: 0.5}, rng.Split("s"))
	if err != nil {
		t.Fatal(err)
	}
	if shade.WinRate < truthful.WinRate {
		t.Errorf("heavy shading win rate %v below truthful %v — unexpected",
			shade.WinRate, truthful.WinRate)
	}
	if shade.MeanUtility > truthful.MeanUtility+1e-9 {
		t.Errorf("shading earned more (%v) than truthful (%v)",
			shade.MeanUtility, truthful.MeanUtility)
	}
}

func TestMarkupLosesAuctions(t *testing.T) {
	instances := testInstances(t, 2)
	rng := randx.New(13)
	truthful, err := Simulate(instances, Truthful{}, rng.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	markup, err := Simulate(instances, Markup{Rate: 2}, rng.Split("m"))
	if err != nil {
		t.Fatal(err)
	}
	if markup.WinRate > truthful.WinRate {
		t.Errorf("3x overbidding won more (%v) than truthful (%v)",
			markup.WinRate, truthful.WinRate)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, Truthful{}, randx.New(1)); err == nil {
		t.Error("empty instance list accepted")
	}
}
