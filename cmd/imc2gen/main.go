// Command imc2gen generates synthetic crowdsourcing campaigns (the
// stand-in for the paper's datasets), saves them as JSON, and inspects
// saved campaigns.
//
// Usage:
//
//	imc2gen -out campaign.json -seed 42 -workers 120 -tasks 300 -copiers 30
//	imc2gen -inspect campaign.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"imc2/internal/gen"
	"imc2/internal/iox"
	"imc2/internal/randx"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "imc2gen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("imc2gen", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "", "write the generated campaign to this JSON file")
		inspect  = fs.String("inspect", "", "inspect a saved campaign instead of generating")
		seed     = fs.Int64("seed", 1, "generator seed")
		workers  = fs.Int("workers", 120, "worker population")
		tasks    = fs.Int("tasks", 300, "task count")
		copiers  = fs.Int("copiers", 30, "copier count")
		perWork  = fs.Int("tasks-per-worker", 50, "tasks answered per worker")
		copyProb = fs.Float64("copy-prob", 0.8, "behavioural copy probability")
		copyErr  = fs.Float64("copy-error", 0.05, "copy corruption probability")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		c, err := iox.LoadCampaign(*inspect)
		if err != nil {
			return err
		}
		describe(out, c)
		return nil
	}

	spec := gen.DefaultSpec()
	spec.Workers = *workers
	spec.Tasks = *tasks
	spec.Copiers = *copiers
	spec.TasksPerWorker = *perWork
	spec.CopyProb = *copyProb
	spec.CopyError = *copyErr
	c, err := gen.NewCampaign(spec, randx.New(*seed))
	if err != nil {
		return err
	}
	describe(out, c)
	if *outPath != "" {
		if err := iox.SaveCampaign(*outPath, c); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved to %s\n", *outPath)
	}
	return nil
}

// describe prints campaign statistics.
func describe(out io.Writer, c *gen.Campaign) {
	ds := c.Dataset
	fmt.Fprintf(out, "campaign: %d workers (%d copiers), %d tasks, %d observations\n",
		ds.NumWorkers(), len(c.CopierIndex), ds.NumTasks(), ds.NumObservations())

	providers := make([]int, ds.NumTasks())
	minP, maxP := 1<<30, 0
	for j := range providers {
		providers[j] = len(ds.TaskWorkers(j))
		if providers[j] < minP {
			minP = providers[j]
		}
		if providers[j] > maxP {
			maxP = providers[j]
		}
	}
	fmt.Fprintf(out, "providers per task: min %d, max %d, mean %.1f\n",
		minP, maxP, float64(ds.NumObservations())/float64(ds.NumTasks()))

	var costLo, costHi, costSum float64
	costLo = 1 << 30
	for _, cost := range c.Costs {
		if cost < costLo {
			costLo = cost
		}
		if cost > costHi {
			costHi = cost
		}
		costSum += cost
	}
	fmt.Fprintf(out, "costs: min %.2f, max %.2f, mean %.2f\n",
		costLo, costHi, costSum/float64(len(c.Costs)))

	var copiers []int
	for i := range c.CopierIndex {
		copiers = append(copiers, i)
	}
	sort.Ints(copiers)
	for _, i := range copiers {
		var srcs []string
		for _, s := range c.Sources[i] {
			srcs = append(srcs, ds.WorkerID(s))
		}
		sort.Strings(srcs)
		fmt.Fprintf(out, "  copier %s ← %v\n", ds.WorkerID(i), srcs)
	}
}
