package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func genArgs(path string) []string {
	return []string{
		"-out", path, "-seed", "3",
		"-workers", "20", "-tasks", "15", "-copiers", "4", "-tasks-per-worker", "8",
	}
}

func TestGenerateAndInspect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	var buf strings.Builder
	if err := run(genArgs(path), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"campaign: 20 workers (4 copiers), 15 tasks",
		"providers per task", "costs:", "saved to"} {
		if !strings.Contains(out, want) {
			t.Errorf("generate output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run([]string{"-inspect", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "campaign: 20 workers (4 copiers), 15 tasks") {
		t.Errorf("inspect output wrong:\n%s", buf.String())
	}
}

func TestGenerateWithoutSaving(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-workers", "10", "-tasks", "8", "-copiers", "2", "-tasks-per-worker", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "saved to") {
		t.Error("claimed to save without -out")
	}
}

func TestInspectMissingFile(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-inspect", filepath.Join(t.TempDir(), "nope.json")}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-workers", "1"}, &buf); err == nil {
		t.Fatal("invalid population accepted")
	}
}
