package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3a", "fig8b", "a1", "cal"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestResolveIDs(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"fig3a", "fig3a", false},
		{"3a", "fig3a", false},
		{"4B", "fig4b", false},
		{"a1", "a1", false},
		{"cal", "cal", false},
		{"nope", "", true},
	}
	for _, tt := range tests {
		ids, err := resolveIDs(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("resolveIDs(%q): want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("resolveIDs(%q): %v", tt.in, err)
			continue
		}
		if len(ids) != 1 || ids[0] != tt.want {
			t.Errorf("resolveIDs(%q) = %v, want [%s]", tt.in, ids, tt.want)
		}
	}
	all, err := resolveIDs("all")
	if err != nil || len(all) < 12 {
		t.Errorf("resolveIDs(all) = %v, %v", all, err)
	}
}

func TestRunSingleFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	err := run([]string{"-fig", "3b", "-quick", "-reps", "1", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig3b") {
		t.Errorf("output missing figure header:\n%s", buf.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig3b.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "series,") {
		t.Errorf("CSV malformed: %q", string(csv)[:50])
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-fig", "zz"}, &buf); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
