// Command imc2bench regenerates the tables and figures of the paper's
// evaluation (§VII) plus the DESIGN.md ablations.
//
// Usage:
//
//	imc2bench -fig all            # every experiment, markdown to stdout
//	imc2bench -fig 4a -reps 100   # one figure at paper-scale repetitions
//	imc2bench -fig 6b -out out/   # also write out/fig6b.csv
//	imc2bench -list               # list experiment IDs
//
// Figure IDs accept either the internal form ("fig4a", "a1") or the bare
// paper number ("4a").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"imc2/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "imc2bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("imc2bench", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "experiment id (e.g. 3a, fig4b, a1) or 'all'")
		reps  = fs.Int("reps", experiment.DefaultConfig().Reps, "instances per data point (paper used 100)")
		seed  = fs.Int64("seed", experiment.DefaultConfig().Seed, "base seed; identical seeds reproduce identical tables")
		quick = fs.Bool("quick", false, "shrink campaigns and sweeps (smoke mode)")
		dir   = fs.String("out", "", "directory for per-figure CSV files (optional)")
		list  = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiment.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	cfg := experiment.Config{Reps: *reps, Seed: *seed, Quick: *quick}
	ids, err := resolveIDs(*fig)
	if err != nil {
		return err
	}
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiment.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(out, tbl.Markdown())
		fmt.Fprintf(out, "_(%s: %d rows, %s)_\n\n", id, len(tbl.Rows), time.Since(start).Round(time.Millisecond))
		if *dir != "" {
			path := filepath.Join(*dir, id+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
	}
	return nil
}

// resolveIDs expands "all" and normalizes bare figure numbers.
func resolveIDs(fig string) ([]string, error) {
	if fig == "all" {
		return experiment.IDs(), nil
	}
	id := strings.ToLower(fig)
	for _, known := range experiment.IDs() {
		if id == known || "fig"+id == known {
			return []string{known}, nil
		}
	}
	return nil, fmt.Errorf("unknown figure %q (use -list)", fig)
}
