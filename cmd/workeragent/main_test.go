package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"imc2/internal/platform"
	"imc2/internal/registry"
	"imc2/internal/wire"
)

// startTestPlatform serves the same campaign shape the agent regenerates.
func startTestPlatform(t *testing.T, seed int64, workers, tasks, copiers int) *httptest.Server {
	t.Helper()
	c, err := regenerate(seed, workers, tasks, copiers)
	if err != nil {
		t.Fatal(err)
	}
	p, err := platform.New(c.Dataset.Tasks())
	if err != nil {
		t.Fatal(err)
	}
	cfg := platform.DefaultConfig()
	cfg.TruthOptions.CopyProb = 0.8
	cfg.TruthOptions.PriorDependence = 0.05
	srv := httptest.NewServer(wire.NewServer(p, cfg, nil).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestAgentSubmitAllAndClose(t *testing.T) {
	// Seed 3 generates a campaign whose winners all stay replaceable, so
	// the close settles (randx streams changed when Split became
	// non-consuming; seed 5's draw now contains a monopolist).
	srv := startTestPlatform(t, 3, 20, 24, 5)
	args := []string{
		"-platform", srv.URL, "-seed", "3",
		"-workers", "20", "-tasks", "24", "-copiers", "5",
	}

	var buf strings.Builder
	if err := run(append(args, "-all"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "submitted 20 workers") {
		t.Errorf("output = %q", buf.String())
	}

	buf.Reset()
	if err := run(append(args, "-close"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"campaign settled", "precision vs ground truth", "winners:"} {
		if !strings.Contains(out, want) {
			t.Errorf("close output missing %q:\n%s", want, out)
		}
	}
}

func TestAgentStats(t *testing.T) {
	reg := registry.New()
	c, err := regenerate(3, 20, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("one", c.Dataset.Tasks(), platform.DefaultConfig(), false); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wire.NewRegistryServer(reg, "", platform.DefaultConfig(), nil).Handler())
	defer srv.Close()

	var buf strings.Builder
	if err := run([]string{"-platform", srv.URL, "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"registry: 1 campaigns", "open      1",
		"scheduler: disabled", "store: in-memory only",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
}

func TestAgentSingleIndex(t *testing.T) {
	srv := startTestPlatform(t, 6, 20, 24, 5)
	var buf strings.Builder
	err := run([]string{
		"-platform", srv.URL, "-seed", "6",
		"-workers", "20", "-tasks", "24", "-copiers", "5",
		"-index", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "submitted worker") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestAgentIndexOutOfRange(t *testing.T) {
	srv := startTestPlatform(t, 7, 20, 24, 5)
	var buf strings.Builder
	err := run([]string{
		"-platform", srv.URL, "-seed", "7",
		"-workers", "20", "-tasks", "24", "-copiers", "5",
		"-index", "99",
	}, &buf)
	if err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestAgentRequiresAction(t *testing.T) {
	srv := startTestPlatform(t, 8, 20, 24, 5)
	var buf strings.Builder
	err := run([]string{
		"-platform", srv.URL, "-seed", "8",
		"-workers", "20", "-tasks", "24", "-copiers", "5",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "nothing to do") {
		t.Fatalf("err = %v, want nothing-to-do", err)
	}
}

func TestAgentUnreachablePlatform(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-platform", "http://127.0.0.1:1", "-timeout", "2s", "-all"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "not healthy") {
		t.Fatalf("err = %v, want health failure", err)
	}
}

// startMultiPlatform serves two registry campaigns with the agent's
// regenerated shape: campaign k derives from seed+k.
func startMultiPlatform(t *testing.T, seed int64, workers, tasks, copiers, campaigns int) (*httptest.Server, []string) {
	t.Helper()
	reg := registry.New()
	ids := make([]string, 0, campaigns)
	for k := 0; k < campaigns; k++ {
		c, err := regenerate(seed+int64(k), workers, tasks, copiers)
		if err != nil {
			t.Fatal(err)
		}
		hosted, err := reg.Create(fmt.Sprintf("seed-%d", seed+int64(k)), c.Dataset.Tasks(), platform.DefaultConfig(), false)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, hosted.ID())
	}
	srv := wire.NewRegistryServer(reg, ids[0], platform.DefaultConfig(), nil)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, ids
}

func TestAgentListCampaigns(t *testing.T) {
	srv, ids := startMultiPlatform(t, 30, 20, 24, 5, 2)
	var buf strings.Builder
	if err := run([]string{"-platform", srv.URL, "-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 campaigns") {
		t.Errorf("output = %q", out)
	}
	for _, id := range ids {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestAgentDrivesV2Campaign(t *testing.T) {
	srv, ids := startMultiPlatform(t, 40, 20, 24, 5, 2)
	// Drive the second campaign (seed 41) over /v2: batch submit + close.
	args := []string{
		"-platform", srv.URL, "-seed", "41",
		"-workers", "20", "-tasks", "24", "-copiers", "5",
		"-campaign", ids[1],
	}
	var buf strings.Builder
	if err := run(append(args, "-all"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "submitted 20 workers") {
		t.Errorf("output = %q", buf.String())
	}
	buf.Reset()
	if err := run(append(args, "-close"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"campaign settled", "precision vs ground truth", "winners:"} {
		if !strings.Contains(out, want) {
			t.Errorf("close output missing %q:\n%s", want, out)
		}
	}
	// The first campaign is untouched by the second one's close.
	buf.Reset()
	if err := run([]string{"-platform", srv.URL, "-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "open") || !strings.Contains(buf.String(), "settled") {
		t.Errorf("listing after one settle = %q", buf.String())
	}
}

func TestAgentEstimate(t *testing.T) {
	reg := registry.New()
	c, err := regenerate(3, 20, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	hosted, err := reg.Create("live", c.Dataset.Tasks(), platform.DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(wire.NewRegistryServer(reg, hosted.ID(), platform.DefaultConfig(), nil).Handler())
	defer hs.Close()

	var buf strings.Builder
	if err := run([]string{"-platform", hs.URL, "-estimate"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "requires -campaign") {
		t.Fatalf("-estimate without -campaign: err = %v", err)
	}

	args := []string{
		"-platform", hs.URL, "-seed", "3",
		"-workers", "20", "-tasks", "24", "-copiers", "5",
		"-campaign", hosted.ID(),
	}
	buf.Reset()
	if err := run(append(args, "-all"), &buf); err != nil {
		t.Fatal(err)
	}

	// Before any background fold the estimate is empty and fully stale.
	buf.Reset()
	if err := run(append(args, "-estimate"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"covers 0 submissions (20 stale)", "no estimate yet"} {
		if !strings.Contains(out, want) {
			t.Errorf("empty estimate output missing %q:\n%s", want, out)
		}
	}

	// After a fold the agent prints the live truth view.
	if _, err := hosted.FoldEstimate(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(append(args, "-estimate"), &buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"converged=true", "covers 20 submissions (0 stale)", " = "} {
		if !strings.Contains(out, want) {
			t.Errorf("folded estimate output missing %q:\n%s", want, out)
		}
	}
}
