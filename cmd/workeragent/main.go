// Command workeragent simulates crowdsourcing workers against a running
// platformd. Both sides derive the campaign deterministically from the
// shared -seed, so the agent knows which answers "its" workers hold.
//
// Usage:
//
//	workeragent -platform http://127.0.0.1:8080 -seed 42 -workers 40 -all
//	workeragent -platform http://127.0.0.1:8080 -seed 42 -workers 40 -index 3
//	workeragent -platform http://127.0.0.1:8080 -close
//	workeragent -platform http://127.0.0.1:8080 -list
//	workeragent -platform http://127.0.0.1:8080 -stats
//	workeragent -platform http://127.0.0.1:8080 -campaign cmp-… -estimate
//	workeragent -platform http://127.0.0.1:8080 -campaign cmp-… -seed 43 -all -close
//	workeragent -platform http://127.0.0.1:8080 -trace 4bf92f3577b34da6a3ce929d0e0e4736
//
// With -close the agent settles the auction and prints the report,
// scoring the estimated truth against the ground truth it can reconstruct
// from the seed. Without -campaign the agent drives the /v1
// single-campaign shim; with -campaign (see -list for IDs) it targets one
// campaign of a multi-campaign platformd over /v2, submitting -all as one
// batch and closing asynchronously (it polls until the campaign settles).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"imc2/internal/gen"
	"imc2/internal/randx"
	"imc2/internal/stats"
	"imc2/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "workeragent:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("workeragent", flag.ContinueOnError)
	var (
		base      = fs.String("platform", "http://127.0.0.1:8080", "platform base URL")
		seed      = fs.Int64("seed", 42, "campaign seed shared with platformd")
		workers   = fs.Int("workers", 40, "campaign worker population (must match platformd)")
		tasks     = fs.Int("tasks", 60, "campaign task count (must match platformd)")
		copiers   = fs.Int("copiers", 10, "campaign copier count (must match platformd)")
		index     = fs.Int("index", -1, "submit only this worker index")
		all       = fs.Bool("all", false, "submit every worker in the population")
		close_    = fs.Bool("close", false, "close the auction and print the report")
		campaign  = fs.String("campaign", "", "target this /v2 campaign ID (empty: the /v1 default campaign)")
		list      = fs.Bool("list", false, "list the platform's campaigns and exit")
		estimate  = fs.Bool("estimate", false, "print the campaign's live truth estimate (requires -campaign) and exit")
		showStats = fs.Bool("stats", false, "print the platform's unified stats snapshot (GET /v2/stats) and exit")
		traceID   = fs.String("trace", "", "pretty-print this trace's span tree (GET /v2/traces/{id}; requires platformd -trace) and exit")
		timeout   = fs.Duration("timeout", time.Minute, "request deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client := wire.NewClient(*base)
	if !client.Healthy(ctx) {
		return fmt.Errorf("platform at %s is not healthy", *base)
	}

	if *list {
		return listCampaigns(ctx, client, out)
	}
	if *showStats {
		return printStats(ctx, client, out)
	}
	if *traceID != "" {
		return printTrace(ctx, client, *traceID, out)
	}
	if *estimate {
		if *campaign == "" {
			return fmt.Errorf("-estimate requires -campaign (see -list for IDs)")
		}
		return printEstimate(ctx, client, *campaign, out)
	}

	c, err := regenerate(*seed, *workers, *tasks, *copiers)
	if err != nil {
		return err
	}

	switch {
	case *all:
		if *campaign != "" {
			subs := make([]wire.Submission, 0, c.Dataset.NumWorkers())
			for i := 0; i < c.Dataset.NumWorkers(); i++ {
				subs = append(subs, submissionFor(c, i))
			}
			n, err := client.SubmitBatch(ctx, *campaign, subs)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "submitted %d workers\n", n)
			break
		}
		for i := 0; i < c.Dataset.NumWorkers(); i++ {
			if err := submit(ctx, client, *campaign, c, i); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "submitted %d workers\n", c.Dataset.NumWorkers())
	case *index >= 0:
		if *index >= c.Dataset.NumWorkers() {
			return fmt.Errorf("index %d out of range [0, %d)", *index, c.Dataset.NumWorkers())
		}
		if err := submit(ctx, client, *campaign, c, *index); err != nil {
			return err
		}
		fmt.Fprintf(out, "submitted worker %s\n", c.Dataset.WorkerID(*index))
	case *close_:
		// handled below
	default:
		return fmt.Errorf("nothing to do: pass -all, -index, -close, -list, -estimate, -stats, or -trace")
	}

	if *close_ {
		report, err := closeCampaign(ctx, client, *campaign)
		if err != nil {
			return err
		}
		printReport(out, c, report)
	}
	return nil
}

// listCampaigns prints every campaign the platform hosts, following the
// listing's pagination to the end.
func listCampaigns(ctx context.Context, client *wire.Client, out io.Writer) error {
	for offset := 0; ; {
		page, err := client.Campaigns(ctx, offset, 0)
		if err != nil {
			return err
		}
		if offset == 0 {
			fmt.Fprintf(out, "%d campaigns\n", page.Total)
		}
		for _, info := range page.Campaigns {
			fmt.Fprintf(out, "  %s  %-9s  tasks=%d submissions=%d  %s\n",
				info.ID, info.State, info.Tasks, info.Submissions, info.Name)
		}
		offset += len(page.Campaigns)
		if offset >= page.Total || len(page.Campaigns) == 0 {
			return nil
		}
	}
}

// printStats fetches the unified platform snapshot and renders each
// section the way an operator reads it: the registry's population, the
// settle scheduler's admission counters, the store's durability state.
func printStats(ctx context.Context, client *wire.Client, out io.Writer) error {
	st, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "registry: %d campaigns\n", st.Registry.Campaigns)
	states := make([]string, 0, len(st.Registry.States))
	for s := range st.Registry.States {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(out, "  %-9s %d\n", s, st.Registry.States[s])
	}
	if sc := st.Scheduler; sc.Enabled {
		fmt.Fprintf(out, "scheduler: %d/%d active settles, %d queued (peak %d/%d)\n",
			sc.ActiveSettles, sc.MaxConcurrentSettles, sc.QueuedSettles,
			sc.PeakActiveSettles, sc.PeakQueuedSettles)
		fmt.Fprintf(out, "  admitted=%d completed=%d rejected=%d overflowed=%d workers=%d\n",
			sc.TotalAdmitted, sc.TotalCompleted, sc.TotalRejected, sc.TotalOverflowed, sc.Workers)
	} else {
		fmt.Fprintln(out, "scheduler: disabled (settles run unadmitted)")
	}
	if ss := st.Store; ss.Enabled {
		fmt.Fprintf(out, "store: %s (fsync=%s)\n", ss.Dir, ss.Fsync)
		fmt.Fprintf(out, "  seq=%d appended=%d recovered=%d snapshots=%d wal_bytes=%d\n",
			ss.LastSeq, ss.AppendedEvents, ss.RecoveredEvents, ss.SnapshotsWritten, ss.WALBytes)
		if ss.Failed != "" {
			fmt.Fprintf(out, "  FAILED: %s\n", ss.Failed)
		}
	} else {
		fmt.Fprintln(out, "store: in-memory only")
	}
	return nil
}

// printEstimate fetches and renders a campaign's live provisional truth
// estimate. A fresh converged estimate (staleness 0) previews exactly
// what the settled report's truth will say if the campaign closes now.
func printEstimate(ctx context.Context, client *wire.Client, campaign string, out io.Writer) error {
	est, err := client.CampaignEstimate(ctx, campaign)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "campaign %s estimate (%s): %d iterations, converged=%v\n",
		est.CampaignID, est.Method, est.Iterations, est.Converged)
	fmt.Fprintf(out, "covers %d submissions (%d stale), %d folds / %d rebuilds\n",
		est.CoveredSubmissions, est.Staleness, est.Folds, est.Rebuilds)
	if len(est.Truth) == 0 {
		fmt.Fprintln(out, "no estimate yet (run platformd with -live-estimate, or wait for the first fold)")
		return nil
	}
	tasks := make([]string, 0, len(est.Truth))
	for id := range est.Truth {
		tasks = append(tasks, id)
	}
	sort.Strings(tasks)
	for _, id := range tasks {
		fmt.Fprintf(out, "  %s = %s\n", id, est.Truth[id])
	}
	return nil
}

// printTrace fetches one trace's full span tree and renders it as an
// indented tree — each span with its duration, attributes, and error,
// span events inset beneath it with their offset from the span's start.
func printTrace(ctx context.Context, client *wire.Client, id string, out io.Writer) error {
	tr, err := client.TraceByID(ctx, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace %s", tr.TraceID)
	if tr.Kind != "" {
		fmt.Fprintf(out, " (%s)", tr.Kind)
	}
	fmt.Fprintf(out, ": %d spans, %.2fms", len(tr.Spans), tr.DurationMS)
	if tr.Error {
		fmt.Fprint(out, ", ERROR")
	}
	fmt.Fprintln(out)
	if tr.DroppedSpans > 0 {
		fmt.Fprintf(out, "(%d spans dropped by the per-trace bound)\n", tr.DroppedSpans)
	}

	// Rebuild the tree: spans whose parent is absent (or none) are roots.
	byID := make(map[string]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		byID[s.SpanID] = true
	}
	children := make(map[string][]int)
	var roots []int
	for i, s := range tr.Spans {
		if s.ParentID != "" && byID[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return tr.Spans[idx[a]].Start.Before(tr.Spans[idx[b]].Start) })
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := tr.Spans[i]
		indent := strings.Repeat("  ", depth)
		dur := fmt.Sprintf("%.2fms", s.DurationMS)
		if s.InProgress {
			dur = "in progress"
		}
		fmt.Fprintf(out, "%s%s  %s%s", indent, s.Name, dur, attrList(s.Attrs))
		if s.Error != "" {
			fmt.Fprintf(out, "  ERROR: %s", s.Error)
		}
		fmt.Fprintln(out)
		for _, ev := range s.Events {
			fmt.Fprintf(out, "%s  · %s  +%.2fms%s\n",
				indent, ev.Name, float64(ev.At.Sub(s.Start))/float64(time.Millisecond), attrList(ev.Attrs))
		}
		if s.DroppedAttrs > 0 || s.DroppedEvents > 0 {
			fmt.Fprintf(out, "%s  (%d attrs, %d events dropped by per-span bounds)\n",
				indent, s.DroppedAttrs, s.DroppedEvents)
		}
		kids := children[s.SpanID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	byStart(roots)
	for _, r := range roots {
		walk(r, 0)
	}
	return nil
}

// attrList renders span/event attributes as "  [k=v, k=v]", keys sorted.
func attrList(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, k+"="+attrs[k])
	}
	return "  [" + strings.Join(pairs, ", ") + "]"
}

// closeCampaign settles either the /v1 default campaign (synchronous) or
// a /v2 campaign (asynchronous: close, poll until settled, fetch report).
func closeCampaign(ctx context.Context, client *wire.Client, campaign string) (*wire.Report, error) {
	if campaign == "" {
		return client.Close(ctx)
	}
	if _, err := client.CloseCampaign(ctx, campaign); err != nil {
		return nil, err
	}
	if _, err := client.AwaitSettled(ctx, campaign, 0); err != nil {
		return nil, err
	}
	return client.CampaignReport(ctx, campaign)
}

// regenerate rebuilds the campaign platformd generated (same spec shaping
// as platformd's campaignSpec).
func regenerate(seed int64, workers, tasks, copiers int) (*gen.Campaign, error) {
	spec := gen.DefaultSpec()
	spec.Workers = workers
	spec.Tasks = tasks
	spec.Copiers = copiers
	spec.TasksPerWorker = tasks / 3
	if spec.TasksPerWorker < 1 {
		spec.TasksPerWorker = 1
	}
	// Over-provisioned demo requirements: every winner must stay
	// replaceable for critical payments to exist.
	spec.RequirementLow, spec.RequirementHigh = 0.5, 1
	spec.MinProvidersPerTask = 4
	return gen.NewCampaign(spec, randx.New(seed))
}

// submissionFor assembles worker i's sealed envelope.
func submissionFor(c *gen.Campaign, i int) wire.Submission {
	ds := c.Dataset
	answers := make(map[string]string)
	for _, j := range ds.WorkerTasks(i) {
		answers[ds.Task(j).ID] = ds.ValueString(j, ds.ValueOf(i, j))
	}
	return wire.Submission{
		Worker:  ds.WorkerID(i),
		Price:   c.Costs[i],
		Answers: answers,
	}
}

func submit(ctx context.Context, client *wire.Client, campaign string, c *gen.Campaign, i int) error {
	sub := submissionFor(c, i)
	var err error
	if campaign == "" {
		err = client.Submit(ctx, sub)
	} else {
		err = client.SubmitTo(ctx, campaign, sub)
	}
	if err != nil {
		return fmt.Errorf("worker %s: %w", sub.Worker, err)
	}
	return nil
}

func printReport(out io.Writer, c *gen.Campaign, report *wire.Report) {
	fmt.Fprintf(out, "campaign settled after %d truth-discovery iterations (converged=%v)\n",
		report.TruthIterations, report.Converged)
	fmt.Fprintf(out, "precision vs ground truth: %.4f\n",
		stats.Precision(report.Truth, c.GroundTruth))
	fmt.Fprintf(out, "winners: %d   social cost: %.3f   total payment: %.3f   platform utility: %.3f\n",
		len(report.Winners), report.SocialCost, report.TotalPayment, report.PlatformUtility)

	ids := append([]string(nil), report.Winners...)
	sort.Strings(ids)
	for _, w := range ids {
		fmt.Fprintf(out, "  %s paid %.3f\n", w, report.Payments[w])
	}
}
