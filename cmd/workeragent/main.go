// Command workeragent simulates crowdsourcing workers against a running
// platformd. Both sides derive the campaign deterministically from the
// shared -seed, so the agent knows which answers "its" workers hold.
//
// Usage:
//
//	workeragent -platform http://127.0.0.1:8080 -seed 42 -workers 40 -all
//	workeragent -platform http://127.0.0.1:8080 -seed 42 -workers 40 -index 3
//	workeragent -platform http://127.0.0.1:8080 -close
//
// With -close the agent settles the auction and prints the report,
// scoring the estimated truth against the ground truth it can reconstruct
// from the seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"imc2/internal/gen"
	"imc2/internal/randx"
	"imc2/internal/stats"
	"imc2/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "workeragent:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("workeragent", flag.ContinueOnError)
	var (
		base    = fs.String("platform", "http://127.0.0.1:8080", "platform base URL")
		seed    = fs.Int64("seed", 42, "campaign seed shared with platformd")
		workers = fs.Int("workers", 40, "campaign worker population (must match platformd)")
		tasks   = fs.Int("tasks", 60, "campaign task count (must match platformd)")
		copiers = fs.Int("copiers", 10, "campaign copier count (must match platformd)")
		index   = fs.Int("index", -1, "submit only this worker index")
		all     = fs.Bool("all", false, "submit every worker in the population")
		close_  = fs.Bool("close", false, "close the auction and print the report")
		timeout = fs.Duration("timeout", time.Minute, "request deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client := wire.NewClient(*base)
	if !client.Healthy(ctx) {
		return fmt.Errorf("platform at %s is not healthy", *base)
	}

	c, err := regenerate(*seed, *workers, *tasks, *copiers)
	if err != nil {
		return err
	}

	switch {
	case *all:
		for i := 0; i < c.Dataset.NumWorkers(); i++ {
			if err := submit(ctx, client, c, i); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "submitted %d workers\n", c.Dataset.NumWorkers())
	case *index >= 0:
		if *index >= c.Dataset.NumWorkers() {
			return fmt.Errorf("index %d out of range [0, %d)", *index, c.Dataset.NumWorkers())
		}
		if err := submit(ctx, client, c, *index); err != nil {
			return err
		}
		fmt.Fprintf(out, "submitted worker %s\n", c.Dataset.WorkerID(*index))
	case *close_:
		// handled below
	default:
		return fmt.Errorf("nothing to do: pass -all, -index, or -close")
	}

	if *close_ {
		report, err := client.Close(ctx)
		if err != nil {
			return err
		}
		printReport(out, c, report)
	}
	return nil
}

// regenerate rebuilds the campaign platformd generated (same spec shaping
// as platformd's campaignSpec).
func regenerate(seed int64, workers, tasks, copiers int) (*gen.Campaign, error) {
	spec := gen.DefaultSpec()
	spec.Workers = workers
	spec.Tasks = tasks
	spec.Copiers = copiers
	spec.TasksPerWorker = tasks / 3
	if spec.TasksPerWorker < 1 {
		spec.TasksPerWorker = 1
	}
	// Over-provisioned demo requirements: every winner must stay
	// replaceable for critical payments to exist.
	spec.RequirementLow, spec.RequirementHigh = 0.5, 1
	spec.MinProvidersPerTask = 4
	return gen.NewCampaign(spec, randx.New(seed))
}

func submit(ctx context.Context, client *wire.Client, c *gen.Campaign, i int) error {
	ds := c.Dataset
	answers := make(map[string]string)
	for _, j := range ds.WorkerTasks(i) {
		answers[ds.Task(j).ID] = ds.ValueString(j, ds.ValueOf(i, j))
	}
	err := client.Submit(ctx, wire.Submission{
		Worker:  ds.WorkerID(i),
		Price:   c.Costs[i],
		Answers: answers,
	})
	if err != nil {
		return fmt.Errorf("worker %s: %w", ds.WorkerID(i), err)
	}
	return nil
}

func printReport(out io.Writer, c *gen.Campaign, report *wire.Report) {
	fmt.Fprintf(out, "campaign settled after %d truth-discovery iterations (converged=%v)\n",
		report.TruthIterations, report.Converged)
	fmt.Fprintf(out, "precision vs ground truth: %.4f\n",
		stats.Precision(report.Truth, c.GroundTruth))
	fmt.Fprintf(out, "winners: %d   social cost: %.3f   total payment: %.3f   platform utility: %.3f\n",
		len(report.Winners), report.SocialCost, report.TotalPayment, report.PlatformUtility)

	ids := append([]string(nil), report.Winners...)
	sort.Strings(ids)
	for _, w := range ids {
		fmt.Fprintf(out, "  %s paid %.3f\n", w, report.Payments[w])
	}
}
