package main

import (
	"context"
	"fmt"
	"testing"
	"time"

	"imc2/internal/wire"
)

func TestRunRejectsBadTracingFlags(t *testing.T) {
	if err := run([]string{"-trace", "-trace-buffer", "0", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("-trace-buffer 0 accepted")
	}
	if err := run([]string{"-trace", "-trace-slow-ms", "-1", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("negative -trace-slow-ms accepted")
	}
}

// TestTraceEndpointE2E drives the real daemon with -trace and a durable
// store: one close must produce one retained trace whose span tree
// covers every layer — the wire request root, the settle (with its
// scheduler admission event), truth discovery (with per-iteration
// events), the auction, and the store's appends and fsyncs — all under
// a single trace ID served by GET /v2/traces/{id}.
func TestTraceEndpointE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real daemon; skipped in -short")
	}
	bin := buildPlatformd(t)

	const (
		seed    = 7
		workers = 20
		tasks   = 30
		copiers = 5
	)
	d := startDaemon(t, bin, []string{
		"-addr", freeAddr(t),
		"-seed", fmt.Sprint(seed), "-workers", fmt.Sprint(workers),
		"-tasks", fmt.Sprint(tasks), "-copiers", fmt.Sprint(copiers),
		"-parallelism", "1",
		"-data-dir", t.TempDir(), "-fsync", "settle",
		"-trace", "-trace-buffer", "64", "-trace-slow-ms", "0",
	})

	ctx := context.Background()
	id := soleCampaignID(t, d.client)
	if _, err := d.client.SubmitBatch(ctx, id, workloadSubmissions(t, seed, workers, tasks, copiers)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.CloseCampaign(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.AwaitSettled(ctx, id, 0); err != nil {
		t.Fatal(err)
	}

	// The settle outlives the close request, so the trace stays
	// in-progress briefly after AwaitSettled returns; poll until the
	// flight recorder shows it complete.
	var settle *wire.TraceSummary
	deadline := time.Now().Add(10 * time.Second)
	for settle == nil {
		page, err := d.client.Traces(ctx, id, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := range page.Traces {
			if tr := &page.Traces[i]; tr.Kind == "settle" && !tr.InProgress {
				settle = tr
				break
			}
		}
		if settle == nil {
			if time.Now().After(deadline) {
				t.Fatalf("no completed settle trace for campaign %s\nstderr:\n%s", id, d.stderr.String())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if settle.Campaign != id {
		t.Errorf("settle trace campaign = %q, want %q", settle.Campaign, id)
	}

	snap, err := d.client.TraceByID(ctx, settle.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.TraceID != settle.TraceID {
		t.Fatalf("GET /v2/traces/%s returned trace %s", settle.TraceID, snap.TraceID)
	}
	if snap.DroppedSpans != 0 {
		t.Errorf("settle trace dropped %d spans", snap.DroppedSpans)
	}

	spans := make(map[string]*wire.SpanSnapshot, len(snap.Spans))
	for i := range snap.Spans {
		s := &snap.Spans[i]
		if s.InProgress {
			t.Errorf("span %s still in progress in a completed trace", s.Name)
		}
		spans[s.Name] = s
	}
	// One trace, every layer: wire root, settle, truth, auction, store.
	for _, want := range []string{
		"POST /v2/campaigns/{id}/close",
		"campaign.settle",
		"truth.discover",
		"auction",
		"store.append",
		"store.fsync",
	} {
		if spans[want] == nil {
			t.Errorf("trace is missing span %q (got %d spans)", want, len(snap.Spans))
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// The settle hangs off the wire root; truth discovery hangs off the
	// settle — the layers share one tree, not parallel roots.
	root := spans["POST /v2/campaigns/{id}/close"]
	if root.ParentID != "" {
		t.Errorf("wire root span has parent %q", root.ParentID)
	}
	if got := spans["campaign.settle"].ParentID; got != root.SpanID {
		t.Errorf("campaign.settle parent = %q, want wire root %q", got, root.SpanID)
	}
	if got := spans["truth.discover"].ParentID; got != spans["campaign.settle"].SpanID {
		t.Errorf("truth.discover parent = %q, want campaign.settle %q", got, spans["campaign.settle"].SpanID)
	}

	// Scheduler admission and truth iterations surface as span events.
	if !spanHasEvent(spans["campaign.settle"], "sched.admitted") {
		t.Error("campaign.settle span has no sched.admitted event (queue wait is invisible)")
	}
	if !spanHasEvent(spans["truth.discover"], "truth.iteration") {
		t.Error("truth.discover span has no truth.iteration events")
	}

	d.stopGracefully(t)
}

func spanHasEvent(s *wire.SpanSnapshot, name string) bool {
	for _, ev := range s.Events {
		if ev.Name == name {
			return true
		}
	}
	return false
}
