package main

import (
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"imc2/internal/gen"
	"imc2/internal/randx"
	"imc2/internal/wire"
)

// TestCrashRecoveryE2E is the durability acceptance test against the
// real daemon: platformd is started with a data directory, fed sealed
// submissions over the wire, and SIGKILLed — once after its campaign
// settled, once before — and each restart on the same directory must
// recover to exactly the state the crash interrupted: the settled
// report bit-identical to a never-crashed baseline run, and an
// unsettled campaign still open with every submission, settling to that
// same baseline.
func TestCrashRecoveryE2E(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL e2e needs a POSIX platform")
	}
	if testing.Short() {
		t.Skip("builds and drives the real daemon; skipped in -short")
	}
	bin := buildPlatformd(t)

	const (
		seed    = 7
		workers = 20
		tasks   = 30
		copiers = 5
	)
	// The same deterministic workload the daemon pre-opens (campaign
	// spec shaping shared with run()).
	spec, err := campaignSpec(workers, tasks, copiers)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gen.NewCampaign(spec, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]wire.Submission, 0, w.Dataset.NumWorkers())
	for i := 0; i < w.Dataset.NumWorkers(); i++ {
		ds := w.Dataset
		answers := make(map[string]string)
		for _, j := range ds.WorkerTasks(i) {
			answers[ds.Task(j).ID] = ds.ValueString(j, ds.ValueOf(i, j))
		}
		subs = append(subs, wire.Submission{Worker: ds.WorkerID(i), Price: w.Costs[i], Answers: answers})
	}
	args := func(dataDir, addr string) []string {
		return []string{
			"-addr", addr, "-data-dir", dataDir,
			"-seed", fmt.Sprint(seed), "-workers", fmt.Sprint(workers),
			"-tasks", fmt.Sprint(tasks), "-copiers", fmt.Sprint(copiers),
			"-parallelism", "1", "-snapshot-every", "4",
		}
	}
	ctx := context.Background()

	// Baseline: a run that is never crashed (graceful SIGTERM exit).
	baseDir := t.TempDir()
	d := startDaemon(t, bin, args(baseDir, freeAddr(t)))
	id := soleCampaignID(t, d.client)
	if _, err := d.client.SubmitBatch(ctx, id, subs); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.CloseCampaign(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.AwaitSettled(ctx, id, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	baseline, err := d.client.CampaignReport(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	d.stopGracefully(t)

	t.Run("kill-after-settle", func(t *testing.T) {
		dir := t.TempDir()
		d := startDaemon(t, bin, args(dir, freeAddr(t)))
		id := soleCampaignID(t, d.client)
		if _, err := d.client.SubmitBatch(ctx, id, subs); err != nil {
			t.Fatal(err)
		}
		if _, err := d.client.CloseCampaign(ctx, id); err != nil {
			t.Fatal(err)
		}
		if _, err := d.client.AwaitSettled(ctx, id, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		preCrash, err := d.client.CampaignReport(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(preCrash, baseline) {
			t.Fatal("same-seed run diverged from baseline before the crash")
		}
		d.kill(t) // SIGKILL: no flush, no snapshot, no goodbye

		r := startDaemon(t, bin, args(dir, freeAddr(t)))
		defer r.stopGracefully(t)
		snap, err := r.client.Campaign(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != "settled" || !snap.Persisted || snap.RecoveredAt == "" {
			t.Fatalf("recovered snapshot = %+v, want settled+persisted+recovered_at", snap)
		}
		got, err := r.client.CampaignReport(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatal("report after SIGKILL+restart diverged from the never-crashed baseline")
		}
		ss, err := r.client.StoreStats(ctx)
		if err != nil || !ss.Enabled || ss.RecoveredCampaigns != 1 {
			t.Fatalf("store stats after recovery = %+v, %v", ss, err)
		}
	})

	t.Run("kill-before-close", func(t *testing.T) {
		dir := t.TempDir()
		d := startDaemon(t, bin, args(dir, freeAddr(t)))
		id := soleCampaignID(t, d.client)
		if _, err := d.client.SubmitBatch(ctx, id, subs); err != nil {
			t.Fatal(err)
		}
		d.kill(t) // between the WAL submission append and any snapshot

		r := startDaemon(t, bin, args(dir, freeAddr(t)))
		defer r.stopGracefully(t)
		snap, err := r.client.Campaign(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != "open" || snap.Submissions != len(subs) {
			t.Fatalf("recovered snapshot = %+v, want open with %d submissions", snap, len(subs))
		}
		// The recovered submissions settle to the baseline report: the
		// replayed history is the history.
		if _, err := r.client.CloseCampaign(ctx, id); err != nil {
			t.Fatal(err)
		}
		if _, err := r.client.AwaitSettled(ctx, id, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		got, err := r.client.CampaignReport(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatal("settle over recovered submissions diverged from baseline")
		}
	})

	t.Run("kill-racing-the-settle", func(t *testing.T) {
		// The kill lands at an uncontrolled point between the close
		// request and the settled event's fsync. Whatever it tore, the
		// restart must converge to the baseline report: a settled
		// campaign serves it from the log, a pending one is re-queued
		// automatically, an open one is closed again here.
		dir := t.TempDir()
		d := startDaemon(t, bin, args(dir, freeAddr(t)))
		id := soleCampaignID(t, d.client)
		if _, err := d.client.SubmitBatch(ctx, id, subs); err != nil {
			t.Fatal(err)
		}
		if _, err := d.client.CloseCampaign(ctx, id); err != nil {
			t.Fatal(err)
		}
		d.kill(t)

		r := startDaemon(t, bin, args(dir, freeAddr(t)))
		defer r.stopGracefully(t)
		snap, err := r.client.Campaign(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == "open" && snap.SettleError == "" {
			if _, err := r.client.CloseCampaign(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
		awaitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
		defer cancel()
		if _, err := r.client.AwaitSettled(awaitCtx, id, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		got, err := r.client.CampaignReport(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatal("post-crash settle diverged from baseline")
		}
	})
}

// buildPlatformd compiles the daemon once per test run.
func buildPlatformd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "platformd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building platformd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the daemon. The
// tiny window between Close and the daemon's Listen is an accepted race
// — collisions surface as a failed startDaemon, not silent corruption.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// daemon is one running platformd under test.
type daemon struct {
	cmd    *exec.Cmd
	client *wire.Client
	stderr *strings.Builder
}

func startDaemon(t *testing.T, bin string, args []string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &stderr}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			_, _ = d.cmd.Process.Wait()
		}
	})
	addr := args[1] // "-addr" value
	d.client = wire.NewClient("http://" + addr)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ok := d.client.Healthy(ctx)
		cancel()
		if ok {
			return d
		}
		if time.Now().After(deadline) {
			t.Fatalf("platformd never became healthy on %s\nstderr:\n%s", addr, stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon: no graceful shutdown, no store flush.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = d.cmd.Process.Wait()
}

// stopGracefully sends SIGTERM and waits for the drain-and-flush exit.
func (d *daemon) stopGracefully(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		// Already gone (e.g. the cleanup raced); nothing to drain.
		return
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		var exitErr *exec.ExitError
		if err != nil && !isSignalExit(err, &exitErr) {
			t.Fatalf("platformd exit: %v\nstderr:\n%s", err, d.stderr.String())
		}
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatalf("platformd did not drain within 30s of SIGTERM\nstderr:\n%s", d.stderr.String())
	}
}

// isSignalExit reports whether err is the expected exit of a daemon
// stopped by signal (platformd returns the http.ErrServerClosed path
// with status 0, but a SIGTERM race can also surface as signal exit).
func isSignalExit(err error, exitErr **exec.ExitError) bool {
	if ee, ok := err.(*exec.ExitError); ok {
		*exitErr = ee
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return true
		}
	}
	return false
}

// soleCampaignID fetches the single pre-opened campaign's ID.
func soleCampaignID(t *testing.T, client *wire.Client) string {
	t.Helper()
	page, err := client.Campaigns(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Campaigns) != 1 {
		t.Fatalf("daemon hosts %d campaigns, want 1", len(page.Campaigns))
	}
	return page.Campaigns[0].ID
}
