// Command platformd runs the crowdsourcing platform of the paper's Fig. 1
// as an HTTP daemon hosting a registry of concurrent campaigns: it
// pre-opens -campaigns generated task sets, accepts sealed submissions
// from worker agents (cmd/workeragent) over the /v2 protocol, and settles
// each campaign with DATE + the reverse auction when asked to close.
// Campaign k derives deterministically from seed+k, so worker agents
// started with the same seed produce coherent campaigns. The first
// campaign doubles as the default campaign behind the /v1 shim, and
// operators can create further campaigns at runtime via POST
// /v2/campaigns.
//
// Campaign settles are admission-controlled: a registry-wide scheduler
// lets at most -max-settles campaigns run their two stages at once
// (further closes queue FIFO, observable via settle_admission in the
// campaign snapshot and GET /v2/scheduler), and all settles share one
// -sched-workers truth-discovery pool instead of spawning a pool each.
// The queue itself is bounded by -max-queued-settles: an overflowing
// close is rejected with 503 + Retry-After instead of queueing without
// bound (the typed client retries automatically).
//
// With -live-estimate the daemon runs a background incremental settler:
// every -estimate-every it folds each open campaign's truth estimate
// forward by -estimate-budget iterations (through the same settle
// scheduler, so -max-settles bounds background refinement too), serves
// the live view on GET /v2/campaigns/{id}/estimate, and hands the
// refined engine to the close-time settle — same bytes in the report,
// strictly fewer iterations at close.
//
// With -data-dir the daemon is durable: every campaign mutation is
// logged to an event-sourced WAL (snapshotted and compacted every
// -snapshot-every events, fsynced per -fsync) before it is
// acknowledged, and a restart replays the directory — same campaign
// IDs, same submissions, bit-identical settled reports — then re-queues
// any settle the previous process did not survive. Seeded campaigns are
// only pre-opened when the data directory holds no prior state, so a
// restart resumes instead of duplicating. Graceful shutdown drains
// in-flight settles, then flushes and closes the store.
//
// With -metrics-addr the daemon opens a second listener exposing the
// whole platform's metrics (imc2_wire_*, imc2_sched_*, imc2_store_*,
// imc2_registry_*, imc2_truth_*) as Prometheus text on GET /metrics;
// -pprof additionally mounts net/http/pprof on that listener. Logs are
// structured (log/slog); -log-format selects text or json.
//
// With -trace the daemon records distributed-tracing spans: every
// request gets a root span (adopting an inbound W3C traceparent when
// present), and a close's settle carries one trace through admission
// wait, truth-discovery iterations, the auction, and the store's
// fsyncs. A fixed -trace-buffer flight recorder keeps recent traces
// plus every error trace and the slowest settles at or above
// -trace-slow-ms, served on GET /v2/traces and /v2/traces/{id}
// (pretty-print with workeragent -trace <id>). Reports are
// bit-identical traced or not.
//
// Usage:
//
//	platformd -addr :8080 -seed 42 -workers 40 -tasks 60 -campaigns 3 -max-settles 2
//	platformd -addr :8080 -data-dir /var/lib/imc2 -snapshot-every 256 -fsync settle
//	platformd -addr :8080 -metrics-addr 127.0.0.1:9090 -pprof -log-format json
//	platformd -addr :8080 -trace -trace-buffer 512 -trace-slow-ms 250
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imc2/internal/gen"
	"imc2/internal/obs"
	"imc2/internal/platform"
	"imc2/internal/randx"
	"imc2/internal/registry"
	"imc2/internal/sched"
	"imc2/internal/store"
	"imc2/internal/tracing"
	"imc2/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "platformd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("platformd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		seed      = fs.Int64("seed", 42, "base campaign seed (worker agents must match; campaign k uses seed+k)")
		workers   = fs.Int("workers", 40, "worker population per campaign")
		tasks     = fs.Int("tasks", 60, "number of tasks to publicize per campaign")
		copiers   = fs.Int("copiers", 10, "copiers in the population")
		campaigns = fs.Int("campaigns", 1, "seeded campaigns to pre-open (first is the /v1 default)")
		mechanism = fs.String("mechanism", "ra", "auction mechanism: ra, ga, or gb")
		copyProb  = fs.Float64("r", 0.8, "DATE copy probability r")
		alpha     = fs.Float64("alpha", 0.05, "DATE dependence prior α")
		par       = fs.Int("parallelism", 0, "truth-discovery slots requested per settle (0 = GOMAXPROCS, 1 = serial; results are identical either way)")

		maxSettles   = fs.Int("max-settles", 2, "campaign settles allowed to run concurrently; further closes queue FIFO (0 = unlimited)")
		maxQueued    = fs.Int("max-queued-settles", 64, "settle admission queue depth; overflowing closes get 503 + Retry-After (0 = unbounded)")
		schedWorkers = fs.Int("sched-workers", 0, "shared settle worker pool size across all campaigns (0 = GOMAXPROCS)")

		dataDir       = fs.String("data-dir", "", "durable campaign store directory (empty = in-memory only; state dies with the process)")
		snapshotEvery = fs.Int("snapshot-every", 256, "fold a store snapshot and compact the WAL every N events (-1 = only on shutdown)")
		fsyncPolicy   = fs.String("fsync", "settle", "WAL fsync policy: settle (fsync on created/settled/cancelled), always, never")

		liveEstimate   = fs.Bool("live-estimate", false, "run the background incremental settler: fold open campaigns' truth estimates on a cadence so closes settle warm (GET /v2/campaigns/{id}/estimate)")
		estimateEvery  = fs.Duration("estimate-every", 2*time.Second, "incremental settler cadence (with -live-estimate)")
		estimateBudget = fs.Int("estimate-budget", 2, "truth-discovery iterations per campaign per tick (with -live-estimate; 0 = run each fold to convergence)")

		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus text on GET /metrics at this address (empty = metrics disabled)")
		pprofOn     = fs.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the -metrics-addr listener")
		logFormat   = fs.String("log-format", "text", "structured log format: text or json")

		traceOn     = fs.Bool("trace", false, "record request/settle spans in an in-memory flight recorder (GET /v2/traces)")
		traceBuffer = fs.Int("trace-buffer", 256, "recent traces kept by the flight recorder (with -trace)")
		traceSlowMS = fs.Int("trace-slow-ms", 500, "settles at or above this duration compete for the slow-trace retention pool (with -trace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *campaigns < 1 {
		return fmt.Errorf("-campaigns must be at least 1, got %d", *campaigns)
	}
	if *maxSettles < 0 {
		return fmt.Errorf("-max-settles must be >= 0, got %d", *maxSettles)
	}
	if *maxQueued < 0 {
		return fmt.Errorf("-max-queued-settles must be >= 0, got %d", *maxQueued)
	}
	if *schedWorkers < 0 {
		return fmt.Errorf("-sched-workers must be >= 0, got %d", *schedWorkers)
	}
	if *estimateEvery <= 0 {
		return fmt.Errorf("-estimate-every must be positive, got %v", *estimateEvery)
	}
	if *estimateBudget < 0 {
		return fmt.Errorf("-estimate-budget must be >= 0, got %d", *estimateBudget)
	}
	fsync, ok := store.ParseFsyncPolicy(*fsyncPolicy)
	if !ok {
		return fmt.Errorf("unknown -fsync policy %q (settle, always, never)", *fsyncPolicy)
	}
	if *pprofOn && *metricsAddr == "" {
		return fmt.Errorf("-pprof requires -metrics-addr (pprof is served on the metrics listener)")
	}
	if *traceBuffer < 1 {
		return fmt.Errorf("-trace-buffer must be at least 1, got %d", *traceBuffer)
	}
	if *traceSlowMS < 0 {
		return fmt.Errorf("-trace-slow-ms must be >= 0, got %d", *traceSlowMS)
	}
	slogger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}

	spec, err := campaignSpec(*workers, *tasks, *copiers)
	if err != nil {
		return err
	}
	cfg := platform.DefaultConfig()
	cfg.TruthOptions.CopyProb = *copyProb
	cfg.TruthOptions.PriorDependence = *alpha
	cfg.TruthOptions.Parallelism = *par
	mech, err := parseMechanism(*mechanism)
	if err != nil {
		return err
	}
	cfg.Mechanism = mech
	if err := cfg.TruthOptions.Validate(); err != nil {
		return err
	}

	logf := func(format string, args ...any) { slogger.Info(fmt.Sprintf(format, args...)) }
	// One metrics registry for the whole process: every subsystem hangs
	// its instruments off it, and the -metrics-addr listener scrapes it.
	// Nil (metrics disabled) keeps every hot path uninstrumented — the
	// subsystems skip even the clock reads.
	var obsReg *obs.Registry
	if *metricsAddr != "" {
		obsReg = obs.NewRegistry()
	}
	// One settle scheduler for the whole registry: concurrent closes
	// share a bounded pool and queue behind -max-settles instead of each
	// spinning up GOMAXPROCS goroutines. Reports are unaffected.
	scheduler := sched.New(sched.Config{
		Workers:              *schedWorkers,
		MaxConcurrentSettles: *maxSettles,
		MaxQueuedSettles:     *maxQueued,
		Obs:                  obsReg,
	})
	defer scheduler.Close()

	// The tracer's flight recorder is fixed-size: recent traces ride a
	// ring, while error traces and the slowest settles are retained past
	// eviction so the interesting ones survive a busy daemon.
	var tracer *tracing.Tracer
	if *traceOn {
		tracer = tracing.New(tracing.Options{
			Buffer:    *traceBuffer,
			SlowFloor: time.Duration(*traceSlowMS) * time.Millisecond,
		})
		registerTracingMetrics(obsReg, tracer)
		logf("tracing on: keeping %d recent traces plus errors and settles >= %dms — GET /v2/traces",
			*traceBuffer, *traceSlowMS)
	}

	regOpts := []registry.Option{
		registry.WithScheduler(scheduler),
		registry.WithObservability(obsReg),
		registry.WithTracing(tracer),
	}
	var st *store.FileStore
	if *dataDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *dataDir, SnapshotEvery: *snapshotEvery, Fsync: fsync, Obs: obsReg})
		if err != nil {
			return err
		}
		// Closed explicitly on the graceful path (after settles drain);
		// the deferred close only covers error exits, where it flushes
		// whatever was acknowledged.
		defer st.Close()
		regOpts = append(regOpts, registry.WithStore(st))
	}
	reg := registry.New(regOpts...)

	// Recover before seeding: a data directory with prior state resumes
	// it (same IDs, same submissions, bit-identical reports) instead of
	// opening duplicate seeded campaigns.
	var pending []*registry.Campaign
	defaultID := ""
	recovered := 0
	if st != nil {
		var err error
		pending, err = reg.Restore(st.State().Campaigns(), st.RecoveredAt())
		if err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
		recovered = reg.Len()
		if recovered > 0 {
			page, _ := reg.List(0, 1)
			defaultID = page[0].ID()
			logf("recovered %d campaigns from %s (%d events; %d settles to re-queue)",
				recovered, *dataDir, st.Stats().RecoveredEvents, len(pending))
		}
	}
	if recovered == 0 {
		for k := 0; k < *campaigns; k++ {
			c, err := gen.NewCampaign(spec, randx.New(*seed+int64(k)))
			if err != nil {
				return err
			}
			hosted, err := reg.Create(fmt.Sprintf("seed-%d", *seed+int64(k)), c.Dataset.Tasks(), cfg, false)
			if err != nil {
				return err
			}
			if k == 0 {
				defaultID = hosted.ID()
			}
			logf("campaign %s open: %d tasks published, expecting %d workers (seed %d)",
				hosted.ID(), *tasks, *workers, *seed+int64(k))
		}
	}

	srv := wire.NewRegistryServer(reg, defaultID, cfg, logf,
		wire.WithObs(obsReg), wire.WithSlog(slogger), wire.WithTracing(tracer))
	// Finish what the crash interrupted: settles recorded as requested
	// but never settled re-enter the normal admission path.
	srv.ResumeSettles(pending)

	// The background incremental settler folds every open campaign's
	// truth estimate forward between submissions, so closes settle warm
	// (byte-identical reports, fewer close-time iterations). Its folds
	// borrow slots from the settle scheduler, so -max-settles bounds
	// background refinement and real settles together.
	var settler *registry.IncrementalSettler
	if *liveEstimate {
		settlerCtx, settlerCancel := context.WithCancel(context.Background())
		defer settlerCancel()
		settler = reg.StartIncrementalSettler(settlerCtx,
			registry.SettlerConfig{Cadence: *estimateEvery, Budget: *estimateBudget})
		defer settler.Stop()
		logf("incremental settler on: folding open campaigns every %v (budget %d iterations/tick)",
			*estimateEvery, *estimateBudget)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logf("listening on http://%s — %d campaigns under /v2/campaigns, /v1 bound to %s",
		*addr, *campaigns, defaultID)
	logf("settle scheduler: max %d concurrent settles (0 = unlimited), %d shared pool workers",
		*maxSettles, scheduler.Pool().Workers())

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()

	// The metrics listener is separate from the serving listener so a
	// scrape (or a pprof profile) never competes with campaign traffic
	// for the accept queue, and so /metrics can stay loopback-only while
	// /v2 is public.
	var metricsServer *http.Server
	if *metricsAddr != "" {
		metricsServer = &http.Server{
			Addr:              *metricsAddr,
			Handler:           metricsMux(obsReg, *pprofOn),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if merr := metricsServer.ListenAndServe(); merr != nil && merr != http.ErrServerClosed {
				errCh <- fmt.Errorf("metrics listener: %w", merr)
			}
		}()
		logf("metrics on http://%s/metrics (pprof: %v)", *metricsAddr, *pprofOn)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Stop background estimate folds first: a fold holds a scheduler
		// slot, and the settle drain below should not compete with
		// refinement work that no longer matters.
		if settler != nil {
			settler.Stop()
		}
		// Even if the listener cannot drain its connections in time,
		// carry on to the settle drain and the store close: returning
		// early would run the deferred store close while settles are
		// still in flight — the exact race this shutdown order exists
		// to prevent.
		err := httpServer.Shutdown(ctx)
		if metricsServer != nil {
			// Scrapes are quick; close the metrics listener outright so
			// the drain budget goes to campaign traffic and settles.
			metricsServer.Close()
		}
		// Drain in-flight asynchronous settles after the listener stops
		// — srv.Shutdown waits for them (aborting only at ctx expiry,
		// and then still waiting for the abort to land), so every
		// settle's final durable write happens before the store flushes
		// and closes below.
		if serr := srv.Shutdown(ctx); serr != nil && err == nil {
			err = serr
		}
		if st != nil {
			if cerr := st.Close(); cerr != nil {
				logf("campaign store close failed: %v", cerr)
				if err == nil {
					err = cerr
				}
			} else {
				logf("campaign store flushed and closed (%s)", *dataDir)
			}
		}
		return err
	}
}

// newLogger builds the process logger in the requested format. Both
// formats write to stderr; "json" emits one object per record for log
// shippers, "text" stays human-readable.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text, json)", format)
	}
}

// metricsMux assembles the -metrics-addr listener's routes: the
// Prometheus exposition, and — only when asked — the pprof handlers.
// pprof is mounted explicitly rather than via the package's
// DefaultServeMux side effect so it never leaks onto the serving mux.
func metricsMux(o *obs.Registry, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", o.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// registerTracingMetrics exposes the flight recorder's occupancy on the
// metrics listener so operators can see retention pressure (how many
// traces the ring holds, how many were evicted unretained) without
// scraping /v2/traces. No-op unless both subsystems are enabled.
func registerTracingMetrics(o *obs.Registry, tr *tracing.Tracer) {
	if o == nil || tr == nil {
		return
	}
	col := tr.Collector()
	o.GaugeFunc("imc2_tracing_recent_traces_count",
		"Traces in the flight recorder's recent ring.",
		func() float64 { return float64(col.Stats().RecentTraces) })
	o.GaugeFunc("imc2_tracing_error_traces_count",
		"Error traces retained past ring eviction.",
		func() float64 { return float64(col.Stats().ErrorTraces) })
	o.GaugeFunc("imc2_tracing_slow_traces_count",
		"Slow settle traces retained past ring eviction.",
		func() float64 { return float64(col.Stats().SlowTraces) })
	o.GaugeFunc("imc2_tracing_collected_traces_total",
		"Traces ever collected by the flight recorder.",
		func() float64 { return float64(col.Stats().Collected) })
	o.GaugeFunc("imc2_tracing_evicted_traces_total",
		"Traces evicted from the ring without error/slow retention.",
		func() float64 { return float64(col.Stats().Evicted) })
}

// parseMechanism maps the CLI name to a stage-2 mechanism.
func parseMechanism(name string) (platform.Mechanism, error) {
	switch name {
	case "ra":
		return platform.MechanismReverseAuction, nil
	case "ga":
		return platform.MechanismGreedyAccuracy, nil
	case "gb":
		return platform.MechanismGreedyBid, nil
	default:
		return 0, fmt.Errorf("unknown mechanism %q (ra, ga, gb)", name)
	}
}

// campaignSpec shapes the demo campaign.
func campaignSpec(workers, tasks, copiers int) (gen.CampaignSpec, error) {
	spec := gen.DefaultSpec()
	spec.Workers = workers
	spec.Tasks = tasks
	spec.Copiers = copiers
	spec.TasksPerWorker = tasks / 3
	if spec.TasksPerWorker < 1 {
		spec.TasksPerWorker = 1
	}
	// Over-provisioned demo requirements: every winner must stay
	// replaceable for critical payments to exist.
	spec.RequirementLow, spec.RequirementHigh = 0.5, 1
	spec.MinProvidersPerTask = 4
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("campaign spec: %w", err)
	}
	return spec, nil
}
