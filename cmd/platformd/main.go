// Command platformd runs the crowdsourcing platform of the paper's Fig. 1
// as an HTTP daemon hosting a registry of concurrent campaigns: it
// pre-opens -campaigns generated task sets, accepts sealed submissions
// from worker agents (cmd/workeragent) over the /v2 protocol, and settles
// each campaign with DATE + the reverse auction when asked to close.
// Campaign k derives deterministically from seed+k, so worker agents
// started with the same seed produce coherent campaigns. The first
// campaign doubles as the default campaign behind the /v1 shim, and
// operators can create further campaigns at runtime via POST
// /v2/campaigns.
//
// Campaign settles are admission-controlled: a registry-wide scheduler
// lets at most -max-settles campaigns run their two stages at once
// (further closes queue FIFO, observable via settle_admission in the
// campaign snapshot and GET /v2/scheduler), and all settles share one
// -sched-workers truth-discovery pool instead of spawning a pool each.
//
// Usage:
//
//	platformd -addr :8080 -seed 42 -workers 40 -tasks 60 -campaigns 3 -max-settles 2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imc2/internal/gen"
	"imc2/internal/platform"
	"imc2/internal/randx"
	"imc2/internal/registry"
	"imc2/internal/sched"
	"imc2/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "platformd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("platformd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		seed      = fs.Int64("seed", 42, "base campaign seed (worker agents must match; campaign k uses seed+k)")
		workers   = fs.Int("workers", 40, "worker population per campaign")
		tasks     = fs.Int("tasks", 60, "number of tasks to publicize per campaign")
		copiers   = fs.Int("copiers", 10, "copiers in the population")
		campaigns = fs.Int("campaigns", 1, "seeded campaigns to pre-open (first is the /v1 default)")
		mechanism = fs.String("mechanism", "ra", "auction mechanism: ra, ga, or gb")
		copyProb  = fs.Float64("r", 0.8, "DATE copy probability r")
		alpha     = fs.Float64("alpha", 0.05, "DATE dependence prior α")
		par       = fs.Int("parallelism", 0, "truth-discovery slots requested per settle (0 = GOMAXPROCS, 1 = serial; results are identical either way)")

		maxSettles   = fs.Int("max-settles", 2, "campaign settles allowed to run concurrently; further closes queue FIFO (0 = unlimited)")
		schedWorkers = fs.Int("sched-workers", 0, "shared settle worker pool size across all campaigns (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *campaigns < 1 {
		return fmt.Errorf("-campaigns must be at least 1, got %d", *campaigns)
	}
	if *maxSettles < 0 {
		return fmt.Errorf("-max-settles must be >= 0, got %d", *maxSettles)
	}
	if *schedWorkers < 0 {
		return fmt.Errorf("-sched-workers must be >= 0, got %d", *schedWorkers)
	}

	spec, err := campaignSpec(*workers, *tasks, *copiers)
	if err != nil {
		return err
	}
	cfg := platform.DefaultConfig()
	cfg.TruthOptions.CopyProb = *copyProb
	cfg.TruthOptions.PriorDependence = *alpha
	cfg.TruthOptions.Parallelism = *par
	mech, err := parseMechanism(*mechanism)
	if err != nil {
		return err
	}
	cfg.Mechanism = mech
	if err := cfg.TruthOptions.Validate(); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "platformd ", log.LstdFlags)
	// One settle scheduler for the whole registry: concurrent closes
	// share a bounded pool and queue behind -max-settles instead of each
	// spinning up GOMAXPROCS goroutines. Reports are unaffected.
	scheduler := sched.New(sched.Config{Workers: *schedWorkers, MaxConcurrentSettles: *maxSettles})
	defer scheduler.Close()
	reg := registry.New(registry.WithScheduler(scheduler))
	defaultID := ""
	for k := 0; k < *campaigns; k++ {
		c, err := gen.NewCampaign(spec, randx.New(*seed+int64(k)))
		if err != nil {
			return err
		}
		hosted, err := reg.Create(fmt.Sprintf("seed-%d", *seed+int64(k)), c.Dataset.Tasks(), cfg, false)
		if err != nil {
			return err
		}
		if k == 0 {
			defaultID = hosted.ID()
		}
		logger.Printf("campaign %s open: %d tasks published, expecting %d workers (seed %d)",
			hosted.ID(), *tasks, *workers, *seed+int64(k))
	}

	srv := wire.NewRegistryServer(reg, defaultID, cfg, logger.Printf)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Printf("listening on http://%s — %d campaigns under /v2/campaigns, /v1 bound to %s",
		*addr, *campaigns, defaultID)
	logger.Printf("settle scheduler: max %d concurrent settles (0 = unlimited), %d shared pool workers",
		*maxSettles, scheduler.Pool().Workers())

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			return err
		}
		// Abort in-flight asynchronous settles after the listener drains.
		return srv.Shutdown(ctx)
	}
}

// parseMechanism maps the CLI name to a stage-2 mechanism.
func parseMechanism(name string) (platform.Mechanism, error) {
	switch name {
	case "ra":
		return platform.MechanismReverseAuction, nil
	case "ga":
		return platform.MechanismGreedyAccuracy, nil
	case "gb":
		return platform.MechanismGreedyBid, nil
	default:
		return 0, fmt.Errorf("unknown mechanism %q (ra, ga, gb)", name)
	}
}

// campaignSpec shapes the demo campaign.
func campaignSpec(workers, tasks, copiers int) (gen.CampaignSpec, error) {
	spec := gen.DefaultSpec()
	spec.Workers = workers
	spec.Tasks = tasks
	spec.Copiers = copiers
	spec.TasksPerWorker = tasks / 3
	if spec.TasksPerWorker < 1 {
		spec.TasksPerWorker = 1
	}
	// Over-provisioned demo requirements: every winner must stay
	// replaceable for critical payments to exist.
	spec.RequirementLow, spec.RequirementHigh = 0.5, 1
	spec.MinProvidersPerTask = 4
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("campaign spec: %w", err)
	}
	return spec, nil
}
