package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"imc2/internal/gen"
	"imc2/internal/randx"
	"imc2/internal/wire"
)

// workloadSubmissions regenerates the daemon's seeded campaign workload
// (the contract worker agents rely on) as sealed submissions.
func workloadSubmissions(t *testing.T, seed int64, workers, tasks, copiers int) []wire.Submission {
	t.Helper()
	spec, err := campaignSpec(workers, tasks, copiers)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gen.NewCampaign(spec, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	ds := w.Dataset
	subs := make([]wire.Submission, 0, ds.NumWorkers())
	for i := 0; i < ds.NumWorkers(); i++ {
		answers := make(map[string]string)
		for _, j := range ds.WorkerTasks(i) {
			answers[ds.Task(j).ID] = ds.ValueString(j, ds.ValueOf(i, j))
		}
		subs = append(subs, wire.Submission{Worker: ds.WorkerID(i), Price: w.Costs[i], Answers: answers})
	}
	return subs
}

func TestRunRejectsBadObservabilityFlags(t *testing.T) {
	if err := run([]string{"-log-format", "xml", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("unknown -log-format accepted")
	}
	if err := run([]string{"-pprof", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("-pprof without -metrics-addr accepted")
	}
}

// TestMetricsEndpointE2E drives the real daemon with the observability
// flags on: a campaign is settled over the wire, then /metrics on the
// second listener must expose every subsystem's instruments, and the
// pprof index must answer on the same listener.
func TestMetricsEndpointE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the real daemon; skipped in -short")
	}
	bin := buildPlatformd(t)

	const (
		seed    = 7
		workers = 20
		tasks   = 30
		copiers = 5
	)
	metricsAddr := freeAddr(t)
	d := startDaemon(t, bin, []string{
		"-addr", freeAddr(t),
		"-seed", fmt.Sprint(seed), "-workers", fmt.Sprint(workers),
		"-tasks", fmt.Sprint(tasks), "-copiers", fmt.Sprint(copiers),
		"-parallelism", "1",
		"-metrics-addr", metricsAddr, "-pprof", "-log-format", "json",
	})

	ctx := context.Background()
	id := soleCampaignID(t, d.client)
	if _, err := d.client.SubmitBatch(ctx, id, workloadSubmissions(t, seed, workers, tasks, copiers)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.CloseCampaign(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.AwaitSettled(ctx, id, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	text := string(body)
	for _, want := range []string{
		"imc2_wire_requests_total{",
		"imc2_sched_settles_completed_total 1",
		`imc2_registry_campaigns_count{state="settled"} 1`,
		"imc2_registry_submissions_total 20",
		"imc2_truth_settles_total{",
		"imc2_truth_settle_iterations_count_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// No store flags: the store metrics must not be registered, not
	// report zeros — absent subsystems stay absent.
	if strings.Contains(text, "imc2_store_") {
		t.Error("/metrics exposes store metrics without -data-dir")
	}

	// pprof rides the metrics listener when -pprof is set.
	pp, err := http.Get("http://" + metricsAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	io.Copy(io.Discard, pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline = %d", pp.StatusCode)
	}

	// The daemon's structured logs are JSON objects under -log-format
	// json: every stderr line parses as one. Stop the daemon first so
	// the stderr builder is no longer being written.
	d.stopGracefully(t)
	for _, line := range strings.Split(strings.TrimSpace(d.stderr.String()), "\n") {
		if line != "" && !strings.HasPrefix(line, "{") {
			t.Errorf("stderr line is not JSON: %q", line)
		}
	}
}
