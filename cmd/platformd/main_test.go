package main

import (
	"testing"

	"imc2/internal/platform"
)

func TestParseMechanism(t *testing.T) {
	tests := []struct {
		name    string
		want    platform.Mechanism
		wantErr bool
	}{
		{"ra", platform.MechanismReverseAuction, false},
		{"ga", platform.MechanismGreedyAccuracy, false},
		{"gb", platform.MechanismGreedyBid, false},
		{"vcg", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := parseMechanism(tt.name)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseMechanism(%q) error = %v", tt.name, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseMechanism(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestCampaignSpec(t *testing.T) {
	spec, err := campaignSpec(40, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Workers != 40 || spec.Tasks != 60 || spec.Copiers != 10 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.TasksPerWorker != 20 {
		t.Fatalf("TasksPerWorker = %d, want tasks/3", spec.TasksPerWorker)
	}
	if _, err := campaignSpec(1, 60, 10); err == nil {
		t.Error("invalid population accepted")
	}
	// Tiny task counts floor TasksPerWorker at 1.
	spec, err = campaignSpec(5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if spec.TasksPerWorker != 1 {
		t.Fatalf("TasksPerWorker = %d, want 1", spec.TasksPerWorker)
	}
}

func TestRunRejectsBadMechanism(t *testing.T) {
	if err := run([]string{"-mechanism", "vcg", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("bad mechanism accepted")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if err := run([]string{"-r", "1.5", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("invalid r accepted")
	}
}

func TestRunRejectsBadParallelism(t *testing.T) {
	if err := run([]string{"-parallelism", "-2", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}

func TestRunRejectsBadCampaignCount(t *testing.T) {
	if err := run([]string{"-campaigns", "0", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("zero campaigns accepted")
	}
}

func TestRunRejectsBadSchedulerFlags(t *testing.T) {
	if err := run([]string{"-max-settles", "-1", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("negative -max-settles accepted")
	}
	if err := run([]string{"-sched-workers", "-3", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("negative -sched-workers accepted")
	}
}
