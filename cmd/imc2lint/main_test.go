package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// brokenmod is a self-contained scratch module whose every package
// violates one of the suite's invariants.
const brokenmod = "testdata/brokenmod"

func runDriver(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(&out, &errBuf, args)
	return code, out.String(), errBuf.String()
}

// TestCleanModuleExitsZero pins the exit-code contract's success case:
// the repository itself lints clean.
func TestCleanModuleExitsZero(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-C", "../..", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run wrote findings:\n%s", stdout)
	}
}

// TestBrokenModuleExitsOne pins the findings case: violations make the
// driver fail with status 1 and a count on stderr.
func TestBrokenModuleExitsOne(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-C", brokenmod, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout == "" {
		t.Error("no findings written to stdout")
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing the findings count: %q", stderr)
	}
}

// TestGoldenDiagnostics locks the full text output over the broken
// module: positions, messages, rule tags, and ordering. Regenerate with
// `go test ./cmd/imc2lint/ -run TestGoldenDiagnostics -update`.
func TestGoldenDiagnostics(t *testing.T) {
	_, stdout, _ := runDriver(t, "-C", brokenmod, "./...")
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatalf("writing golden file: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if stdout != string(want) {
		t.Errorf("diagnostics diverge from golden file\ngot:\n%s\nwant:\n%s", stdout, want)
	}
}

// TestJSONOutput pins the -json shape: a JSON array of findings with
// load-dir-relative paths, 1-based positions, and known rule names.
func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-json", "-C", brokenmod, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("-json output is empty despite exit 1")
	}
	rules := map[string]bool{}
	for _, d := range diags {
		if filepath.IsAbs(d.File) {
			t.Errorf("file %q is absolute, want relative to -C", d.File)
		}
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("%s: non-positive position %d:%d", d.File, d.Line, d.Col)
		}
		if d.Message == "" {
			t.Errorf("%s:%d: empty message", d.File, d.Line)
		}
		rules[d.Rule] = true
	}
	for _, want := range []string{"determinism", "errtaxonomy", "lockpair", "ctxscope"} {
		if !rules[want] {
			t.Errorf("no %s finding in the broken module", want)
		}
	}
}

// TestLoadErrorExitsTwo pins the load-failure case: a module that does
// not compile is status 2, not a findings report.
func TestLoadErrorExitsTwo(t *testing.T) {
	dir := t.TempDir()
	writeScratchFile(t, dir, "go.mod", "module scratchload\n\ngo 1.24\n")
	writeScratchFile(t, dir, "bad.go", "package scratchload\n\nvar x int = \"not an int\"\n")
	code, _, stderr := runDriver(t, "-C", dir, "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if stderr == "" {
		t.Error("load failure reported nothing on stderr")
	}
}

// TestLintGate is the CI negative smoke test: inject a fresh violation
// into a scratch module and assert the gate actually fails. A driver
// that silently passes everything would pass every positive check.
func TestLintGate(t *testing.T) {
	dir := t.TempDir()
	writeScratchFile(t, dir, "go.mod", "module scratchgate\n\ngo 1.24\n")
	writeScratchFile(t, dir, filepath.Join("internal", "app", "ctx.go"),
		"package app\n\nimport \"context\"\n\n// Start severs cancellation.\nfunc Start() context.Context {\n\treturn context.Background()\n}\n")
	code, stdout, stderr := runDriver(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for an injected violation\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "[ctxscope]") {
		t.Errorf("injected context.Background not attributed to ctxscope:\n%s", stdout)
	}
}

func writeScratchFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
