package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// brokenmod is a self-contained scratch module whose every package
// violates one of the suite's invariants.
const brokenmod = "testdata/brokenmod"

func runDriver(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(&out, &errBuf, args)
	return code, out.String(), errBuf.String()
}

// TestCleanModuleExitsZero pins the exit-code contract's success case:
// the repository itself lints clean.
func TestCleanModuleExitsZero(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-C", "../..", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run wrote findings:\n%s", stdout)
	}
}

// TestBrokenModuleExitsOne pins the findings case: violations make the
// driver fail with status 1 and a count on stderr.
func TestBrokenModuleExitsOne(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-C", brokenmod, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout == "" {
		t.Error("no findings written to stdout")
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing the findings count: %q", stderr)
	}
}

// TestGoldenDiagnostics locks the full text output over the broken
// module: positions, messages, rule tags, and ordering. Regenerate with
// `go test ./cmd/imc2lint/ -run TestGoldenDiagnostics -update`.
func TestGoldenDiagnostics(t *testing.T) {
	_, stdout, _ := runDriver(t, "-C", brokenmod, "./...")
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatalf("writing golden file: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if stdout != string(want) {
		t.Errorf("diagnostics diverge from golden file\ngot:\n%s\nwant:\n%s", stdout, want)
	}
}

// TestJSONOutput pins the -json shape: a JSON array of findings with
// load-dir-relative paths, 1-based positions, and known rule names.
func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-json", "-C", brokenmod, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("-json output is empty despite exit 1")
	}
	rules := map[string]bool{}
	for _, d := range diags {
		if filepath.IsAbs(d.File) {
			t.Errorf("file %q is absolute, want relative to -C", d.File)
		}
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("%s: non-positive position %d:%d", d.File, d.Line, d.Col)
		}
		if d.Message == "" {
			t.Errorf("%s:%d: empty message", d.File, d.Line)
		}
		rules[d.Rule] = true
	}
	for _, want := range []string{
		"determinism", "errtaxonomy", "lockpair", "ctxscope",
		"lockorder", "exhaustive", "goroleak", "detflow",
	} {
		if !rules[want] {
			t.Errorf("no %s finding in the broken module", want)
		}
	}
}

// TestSarifOutput locks the -sarif shape over the broken module against
// a golden file, and sanity-checks the structural invariants the code
// scanning upload depends on. Regenerate with
// `go test ./cmd/imc2lint/ -run TestSarifOutput -update`.
func TestSarifOutput(t *testing.T) {
	code, stdout, stderr := runDriver(t, "-sarif", "-C", brokenmod, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}

	golden := filepath.Join("testdata", "golden.sarif")
	if *update {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatalf("writing golden file: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if stdout != string(want) {
		t.Errorf("SARIF output diverges from golden file\ngot:\n%s\nwant:\n%s", stdout, want)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "imc2lint" {
		t.Fatalf("want exactly one run from driver imc2lint, got %+v", log.Runs)
	}
	run := log.Runs[0]
	declared := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		declared[r.ID] = true
	}
	if len(run.Results) == 0 {
		t.Fatal("no results despite exit 1")
	}
	for _, res := range run.Results {
		if !declared[res.RuleID] {
			t.Errorf("result rule %q missing from the driver rules table", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Errorf("result %q has %d locations, want 1", res.RuleID, len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if strings.Contains(loc.ArtifactLocation.URI, "\\") || filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("URI %q is not a relative slash path", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %q has non-positive startLine", res.RuleID)
		}
	}
}

// TestLoadErrorExitsTwo pins the load-failure case: a module that does
// not compile is status 2, not a findings report.
func TestLoadErrorExitsTwo(t *testing.T) {
	dir := t.TempDir()
	writeScratchFile(t, dir, "go.mod", "module scratchload\n\ngo 1.24\n")
	writeScratchFile(t, dir, "bad.go", "package scratchload\n\nvar x int = \"not an int\"\n")
	code, _, stderr := runDriver(t, "-C", dir, "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if stderr == "" {
		t.Error("load failure reported nothing on stderr")
	}
}

// TestLintGate is the CI negative smoke test: inject a fresh violation
// per analyzer into a scratch module and assert the gate actually
// fails with the right attribution. A driver that silently passes
// everything would pass every positive check.
func TestLintGate(t *testing.T) {
	cases := []struct {
		rule    string
		path    string
		content string
	}{
		{
			rule: "ctxscope",
			path: filepath.Join("internal", "app", "ctx.go"),
			content: "package app\n\nimport \"context\"\n\n" +
				"// Start severs cancellation.\n" +
				"func Start() context.Context {\n\treturn context.Background()\n}\n",
		},
		{
			rule: "lockorder",
			path: filepath.Join("internal", "registry", "order.go"),
			content: "package registry\n\nimport \"sync\"\n\n" +
				"type R struct {\n\tmuA sync.Mutex\n\tmuB sync.Mutex\n}\n\n" +
				"func (r *R) AB() {\n\tr.muA.Lock()\n\tdefer r.muA.Unlock()\n\tr.muB.Lock()\n\tdefer r.muB.Unlock()\n}\n\n" +
				"func (r *R) BA() {\n\tr.muB.Lock()\n\tdefer r.muB.Unlock()\n\tr.muA.Lock()\n\tdefer r.muA.Unlock()\n}\n",
		},
		{
			rule: "exhaustive",
			path: filepath.Join("internal", "platform", "state.go"),
			content: "package platform\n\n" +
				"type State int\n\nconst (\n\tStateA State = iota\n\tStateB\n\tStateC\n)\n\n" +
				"func Name(s State) string {\n\tswitch s {\n\tcase StateA:\n\t\treturn \"a\"\n\tcase StateB:\n\t\treturn \"b\"\n\t}\n\treturn \"\"\n}\n",
		},
		{
			rule: "goroleak",
			path: filepath.Join("internal", "app", "goro.go"),
			content: "package app\n\nvar n int\n\n" +
				"func Leak() {\n\tgo func() {\n\t\tn++\n\t}()\n}\n",
		},
		{
			rule: "detflow",
			path: filepath.Join("internal", "store", "record.go"),
			content: "package store\n\n" +
				"type KeyRecord struct{ First string }\n\n" +
				"func First(m map[string]int) KeyRecord {\n\tvar first string\n\tfor k := range m {\n\t\tfirst = k\n\t\tbreak\n\t}\n\treturn KeyRecord{First: first}\n}\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			dir := t.TempDir()
			writeScratchFile(t, dir, "go.mod", "module scratchgate\n\ngo 1.24\n")
			writeScratchFile(t, dir, tc.path, tc.content)
			code, stdout, stderr := runDriver(t, "-C", dir, "./...")
			if code != 1 {
				t.Fatalf("exit = %d, want 1 for an injected violation\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
			}
			if !strings.Contains(stdout, "["+tc.rule+"]") {
				t.Errorf("injected violation not attributed to %s:\n%s", tc.rule, stdout)
			}
		})
	}
}

func writeScratchFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
