// Command imc2lint runs the repository's analyzer suite (internal/lint)
// over the module and reports every invariant violation with a
// file:line position.
//
// Usage:
//
//	imc2lint [-C dir] [-json|-sarif] [packages]
//
// The package patterns default to ./... and are resolved by the go
// tool from -C (default: the current directory, which must be inside
// the module). Exit status: 0 when clean, 1 when findings were
// reported, 2 when the module failed to load or type-check. -json
// emits a flat JSON array; -sarif emits a SARIF 2.1.0 log for code
// scanning uploads.
//
// Findings are suppressed with a directive comment on the same line or
// the line above, or for a whole file:
//
//	//lint:allow <rule> <justification>
//	//lint:allowfile <rule> <justification>
//
// See the internal/lint package documentation for the analyzer list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"imc2/internal/lint"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// jsonDiagnostic is the -json output shape, one element per finding.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("imc2lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	dir := fs.String("C", ".", "resolve package patterns from this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadModule(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "imc2lint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Analyzers())

	// Report paths relative to the load directory: stable across
	// checkouts, clickable from the module root.
	absDir, err := filepath.Abs(*dir)
	if err != nil {
		absDir = *dir
	}
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(absDir, file); err == nil {
			file = rel
		}
		out = append(out, jsonDiagnostic{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}

	switch {
	case *sarifOut:
		if err := writeSarif(stdout, out); err != nil {
			fmt.Fprintf(stderr, "imc2lint: encoding findings: %v\n", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "imc2lint: encoding findings: %v\n", err)
			return 2
		}
	default:
		for _, d := range out {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", d.File, d.Line, d.Col, d.Message, d.Rule)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "imc2lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
