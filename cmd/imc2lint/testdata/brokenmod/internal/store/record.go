// Package store is a deliberately broken fixture for the imc2lint
// driver tests: map iteration order leaks into a WAL-encoded record.
package store

// SnapshotRecord mimics a WAL-encoded record type.
type SnapshotRecord struct {
	First string
}

// FirstKey folds whichever key the runtime yields first into the
// record's replay-compared bytes.
func FirstKey(m map[string]int) SnapshotRecord {
	var first string
	for k := range m {
		first = k
		break
	}
	return SnapshotRecord{First: first}
}
