// Package registry is a deliberately broken fixture for the imc2lint
// driver tests: it leaks a lock in a shared-state package.
package registry

import "sync"

// Counter is shared state guarded by a mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc acquires and never releases.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
}
