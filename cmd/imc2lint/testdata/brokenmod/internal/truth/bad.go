// Package truth is a deliberately broken fixture for the imc2lint
// driver tests: it folds the wall clock and map iteration order into a
// result in a determinism-critical package.
package truth

import "time"

// Score depends on the clock and on map order.
func Score(weights map[string]float64) float64 {
	total := float64(time.Now().UnixNano())
	for _, w := range weights {
		total += w
	}
	return total
}
