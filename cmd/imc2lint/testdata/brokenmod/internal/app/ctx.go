// Package app is a deliberately broken fixture for the imc2lint driver
// tests: it originates a context in library code.
package app

import "context"

// Start severs cancellation from its caller.
func Start() context.Context {
	return context.Background()
}
