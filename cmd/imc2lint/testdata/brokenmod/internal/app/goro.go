package app

var total int

// Forget spawns a goroutine nothing ever joins or cancels.
func Forget(n int) {
	go func() {
		for i := 0; i < n; i++ {
			total += i
		}
	}()
}
