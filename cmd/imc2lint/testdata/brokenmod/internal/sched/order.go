// Package sched is a deliberately broken fixture for the imc2lint
// driver tests: it acquires its two locks in both orders.
package sched

import "sync"

type a struct {
	mu sync.Mutex
	n  int
}

type b struct {
	mu sync.Mutex
	n  int
}

// Pair holds two locks with no consistent acquisition order.
type Pair struct {
	x a
	y b
}

// XY takes x before y.
func (p *Pair) XY() {
	p.x.mu.Lock()
	defer p.x.mu.Unlock()
	p.y.mu.Lock()
	defer p.y.mu.Unlock()
	p.x.n++
	p.y.n++
}

// YX takes y before x, closing the cycle.
func (p *Pair) YX() {
	p.y.mu.Lock()
	defer p.y.mu.Unlock()
	p.x.mu.Lock()
	defer p.x.mu.Unlock()
	p.y.n++
	p.x.n++
}
