// Package wire is a deliberately broken fixture for the imc2lint
// driver tests: it bypasses the error seam and severs a cause chain.
package wire

import (
	"errors"
	"fmt"
	"net/http"
)

var errDown = errors.New("backend down")

// Handle writes an error response around the taxonomy seam.
func Handle(w http.ResponseWriter, _ *http.Request) {
	http.Error(w, "broken", http.StatusInternalServerError)
}

// Wrap formats the cause with %v instead of wrapping it.
func Wrap() error {
	return fmt.Errorf("campaign: %v", errDown)
}
