// Package platform is a deliberately broken fixture for the imc2lint
// driver tests: a switch over its lifecycle enum drops a constant
// silently.
package platform

// Phase is the fixture's lifecycle enum.
type Phase int

const (
	PhaseDraft Phase = iota
	PhaseOpen
	PhaseDone
)

// Describe has no case for PhaseDone and no default.
func Describe(p Phase) string {
	switch p {
	case PhaseDraft:
		return "draft"
	case PhaseOpen:
		return "open"
	}
	return ""
}
