module scratchlint

go 1.24
