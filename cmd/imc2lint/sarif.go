package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"imc2/internal/lint"
)

// The -sarif output follows SARIF 2.1.0, the interchange format GitHub
// code scanning ingests. One run, one tool, one result per finding;
// file URIs are load-dir-relative with forward slashes so the upload
// resolves them against the repository root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSarif encodes the findings as one SARIF run. The rules table
// carries the whole suite (plus the lintdirective meta-rule) whether or
// not a rule fired, so code scanning can show the rule inventory.
func writeSarif(w io.Writer, diags []jsonDiagnostic) error {
	var rules []sarifRule
	for _, a := range lint.Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "lintdirective",
		ShortDescription: sarifText{Text: "suppression directives name a rule and carry a justification"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "imc2lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
