// Package imc2 reproduces "Incentivizing the Workers for Truth Discovery
// in Crowdsourcing with Copiers" (Jiang, Niu, Xu, Yang, Xu — ICDCS 2019).
//
// IMC2 is a two-stage incentive mechanism for crowdsourcing platforms
// whose worker pool contains copiers:
//
//   - Stage 1 — truth discovery (DATE): a Bayesian analysis detects
//     directed copying between workers from a single data snapshot,
//     discounts copied values, and jointly estimates worker accuracy and
//     per-task truth. Extensions handle values with multiple
//     presentations (similarity merging) and non-uniformly distributed
//     false values.
//
//   - Stage 2 — reverse auction: the platform selects a minimum-cost set
//     of workers whose estimated accuracies meet every task's accuracy
//     requirement (the NP-hard SOAC problem) with a greedy mechanism that
//     is individually rational, truthful, and 2εH_Ω-approximate, then
//     pays each winner its critical value.
//
// The package is a facade: the heavy lifting lives in internal packages
// (truth, auction, platform, registry, gen, experiment), and this package
// re-exports the stable API. Quick tour:
//
//	// Build a dataset by hand…
//	ds, err := imc2.NewDatasetBuilder().
//		AddTask(imc2.Task{ID: "capital-of-au", NumFalse: 3, Requirement: 2, Value: 5}).
//		AddObservation("alice", "capital-of-au", "Canberra").
//		AddObservation("bob", "capital-of-au", "Sydney").
//		Build()
//
//	// …or generate a synthetic campaign with copiers.
//	campaign, err := imc2.NewCampaign(imc2.DefaultCampaignSpec(), imc2.NewRNG(42))
//
//	// Stage 1: truth discovery.
//	res, err := imc2.DiscoverTruth(ds, imc2.MethodDATE, imc2.DefaultTruthOptions())
//
//	// Stage 2: the full campaign (truth discovery + reverse auction).
//	p, err := imc2.NewPlatform(ds.Tasks())
//	… p.Submit(imc2.Submission{…}) …
//	report, err := p.Run(imc2.DefaultPlatformConfig())
//
// A long-lived service hosts many concurrent campaigns in a registry;
// each campaign walks an explicit lifecycle (Draft → Open → Closing →
// Settled, or Cancelled) and settles off the caller's lock, so one slow
// settle never blocks the others:
//
//	reg := imc2.NewCampaignRegistry()
//	cfg := imc2.NewPlatformConfig(imc2.WithMechanism(imc2.MechanismReverseAuction))
//	c, err := reg.Create("week-31", ds.Tasks(), cfg, false)
//	… c.Submit(imc2.Submission{…}) …
//	report, err := c.Settle(ctx)        // ctx-bounded two-stage settle
//	state := c.State()                   // imc2.CampaignSettled
//
// Settles are CPU-bound in stage 1; the truth-discovery engine spreads
// each iteration over a bounded worker pool (TruthOptions.Parallelism,
// 0 = GOMAXPROCS, 1 = serial; also imc2.WithTruthParallelism and
// platformd's -parallelism). The partition is a pure function of the
// dataset shape, so every parallelism degree produces bit-identical
// results — see API.md's "Settle performance" and the committed
// BenchmarkDiscoverSerial/BenchmarkDiscoverParallel comparison.
//
// A registry settling many campaigns at once should attach a settle
// scheduler, which bounds the aggregate instead of each settle
// separately: a FIFO admission semaphore lets at most
// MaxConcurrentSettles campaigns run their stages concurrently (the
// rest queue with observable positions — "settle_admission" in the /v2
// snapshot, GET /v2/scheduler for totals), and all admitted settles
// share one fixed worker pool with round-robin fairness, so N closes
// cost one pool instead of N×GOMAXPROCS goroutines:
//
//	s := imc2.NewSettleScheduler(imc2.SettleSchedulerConfig{MaxConcurrentSettles: 2})
//	defer s.Close()
//	reg := imc2.NewCampaignRegistry(imc2.WithSettleScheduler(s))
//
// (or the shorthand imc2.WithMaxConcurrentSettles(2), after which the
// registry's Close stops the internally-built scheduler; platformd
// wires this via -max-settles and -sched-workers). Scheduling never
// changes
// outcomes: the work partition's shape-purity above means reports stay
// bit-identical under any interleaving of campaigns on the shared pool,
// which the multi-campaign stress test in internal/wire pins
// bit-for-bit against serial baselines. The admission queue may itself
// be bounded (SettleSchedulerConfig.MaxQueuedSettles, platformd
// -max-queued-settles): an overflowing close is rejected with
// imc2.ErrUnavailable — 503 + Retry-After on the wire — instead of
// queueing without bound.
//
// Truth discovery is also resumable: imc2.NewTruthEngine runs the same
// computation as DiscoverTruth in pausable installments (Step/Run), and
// the registry builds on that seam to settle campaigns incrementally. A
// background incremental settler (reg.StartIncrementalSettler, or
// platformd's -live-estimate with -estimate-every/-estimate-budget)
// folds newly accepted submissions into a live per-campaign estimate —
// served on GET /v2/campaigns/{id}/estimate and via
// c.Estimate()/c.FoldEstimate — and when the campaign closes, the
// settle adopts the background engine and finishes it. Because the
// engine is the literal cold computation paused, the settled report is
// byte-identical to a cold settle; only the close-time iteration count
// drops (the committed BenchmarkSettleWarmVsCold pins both claims).
// Folds borrow slots from the settle scheduler below, so one admission
// bound governs background refinement and real settles together; see
// API.md's "Live estimates".
//
// A production registry should also be durable: attach a campaign store
// (internal/store) and every mutation — creation, submissions,
// lifecycle transitions, settled reports — is logged to an event-sourced
// WAL with periodic compacted snapshots before it is acknowledged, so a
// crash loses nothing and a restart replays the directory to a
// bit-identical registry (campaigns that died mid-settle are re-queued
// automatically):
//
//	st, err := imc2.NewFileStore("/var/lib/imc2")
//	reg := imc2.NewCampaignRegistry(imc2.WithCampaignStore(st))
//	pending, err := imc2.RestoreCampaigns(reg, st)  // before serving
//
// (platformd wires this via -data-dir, -snapshot-every, and -fsync; see
// API.md's "Durability" for the WAL format, fsync policy, and recovery
// semantics, and GET /v2/store for observability.)
//
// The whole platform is observable through one metrics registry
// (internal/obs): hand imc2.NewMetricsRegistry() to the scheduler, the
// store, the campaign registry (imc2.WithObservability), and the wire
// server, and every subsystem exposes Prometheus-text instruments —
// request latency by route, settle admission and queue wait, WAL fsync
// latency, campaigns by state, and per-iteration truth-discovery
// telemetry (imc2.SettleTrace). platformd serves it all on
// -metrics-addr (plus optional -pprof) and logs structured records via
// -log-format; see API.md's "Observability". Instrumentation never
// changes results, and a nil registry disables it at zero cost.
//
// For request-level visibility the platform also traces itself
// (internal/tracing): attach imc2.NewTracer to the registry
// (imc2.WithTracing) and the wire server, and every request becomes a
// root span — adopting an inbound W3C traceparent when one is present —
// while a close's asynchronous settle carries one child tree through
// scheduler admission, truth-discovery iterations, the auction, and the
// store's appends and fsyncs. Completed traces land in a fixed-size
// flight recorder that keeps the recent ring plus every error trace and
// the slowest settles, served on GET /v2/traces and /v2/traces/{id}
// (platformd -trace, pretty-printed by workeragent -trace <id>). Like
// metrics, tracing never changes results — reports are bit-identical
// traced or not — and a nil tracer costs nothing: no clock reads, no
// allocations. See API.md's "Tracing".
//
// Failures everywhere carry a machine-readable code (imc2.ErrorCodeOf;
// sentinels imc2.ErrNotFound, imc2.ErrConflict, imc2.ErrInvalid,
// imc2.ErrInfeasible, imc2.ErrMonopolist, imc2.ErrCancelled), which the
// HTTP layer (internal/wire, see API.md) maps onto the versioned /v2
// wire protocol.
//
// Every figure and table of the paper's evaluation regenerates through
// RunExperiment (see cmd/imc2bench and EXPERIMENTS.md).
//
// Contributors: the guarantees above are not just prose — a custom
// analyzer suite (internal/lint, driver cmd/imc2lint) mechanically
// enforces settle determinism, the unified error taxonomy, lock
// pairing in the shared-state packages, metric naming with the
// nil-safe clock seam, and context discipline in library code, plus
// four flow-sensitive rules built on a CFG and call-graph layer: the
// cross-package lock-acquisition graph must stay acyclic (lockorder),
// switches over lifecycle/event enums must stay exhaustive
// (exhaustive), every spawned goroutine must reach a join or cancel
// point (goroleak), and map-order/clock-derived values must not reach
// WAL-encoded or report bytes (detflow). CI runs `go run ./cmd/imc2lint
// ./...` as a required step and uploads a `-sarif` log to code
// scanning; deliberate exceptions are annotated in the source with
// `//lint:allow <rule> <justification>` (file-scoped:
// `//lint:allowfile`). See API.md's "Static analysis (imc2lint)".
package imc2
